"""Case study 2 (paper Table III + Section III-G).

Regenerates the paper's second worked example: a topology attack
strengthened with UFDI state infection — exclusion of line 6 plus an
attack on state 3, altering measurements {3, 6, 10, 13, 16, 18} across
buses {2, 3, 4}, moving the believed loads of two buses to 0.29 and
0.10 p.u., with a cost increase above the 6% target, a hard ceiling a few
percent higher, and no pure-UFDI attack able to reach the target.
"""

from fractions import Fraction

import pytest

from repro.benchlib import format_table
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case


@pytest.mark.paper("Table III / case study 2")
def test_case_study_2(benchmark):
    case = get_case("5bus-study2")

    def run():
        analyzer = ImpactAnalyzer(case)
        return analyzer.analyze(ImpactQuery(with_state_infection=True,
                                            verify_with_smt_opf=True))

    report = benchmark.pedantic(run, rounds=3, iterations=1)

    assert report.satisfiable
    attack = report.attack
    assert attack.excluded == [6]
    assert attack.infected_states == [3]
    assert attack.altered_measurements == [3, 6, 10, 13, 16, 18]
    assert attack.compromised_buses == [2, 3, 4]

    rows = [
        ("verdict at 6%", "sat", "sat"),
        ("topology attack", "exclude line 6",
         f"exclude line {attack.excluded[0]}"),
        ("UFDI on state", "3", str(attack.infected_states[0])),
        ("altered measurements", "{3, 6, 10, 13, 16, 18}",
         str(set(attack.altered_measurements))),
        ("buses compromised", "{2, 3, 4}",
         str(set(attack.compromised_buses))),
        ("believed loads moved", "0.21->0.29 and 0.18->0.10",
         f"bus2 -> {float(attack.believed_loads[2]):.2f}, "
         f"bus4 -> {float(attack.believed_loads[4]):.2f}"),
        ("cost increase", "~7%",
         f"{float(report.achieved_increase_percent):.2f}%"),
    ]
    print()
    print(format_table("Case study 2 — paper vs reproduction",
                       ("quantity", "paper", "measured"), rows))


@pytest.mark.paper("case study 2: ceiling and pure-UFDI bound")
def test_case_study_2_boundaries(benchmark):
    case = get_case("5bus-study2")

    def run():
        analyzer = ImpactAnalyzer(case)
        at_ceiling = analyzer.analyze(ImpactQuery(
            target_increase_percent=Fraction(10),
            with_state_infection=True))
        beyond = analyzer.analyze(ImpactQuery(
            target_increase_percent=Fraction(11),
            with_state_infection=True))
        ufdi_only = analyzer.analyze(ImpactQuery(
            target_increase_percent=Fraction(6),
            with_state_infection=True,
            allow_topology_attack=False))
        return at_ceiling, beyond, ufdi_only

    at_ceiling, beyond, ufdi_only = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    assert at_ceiling.satisfiable
    assert not beyond.satisfiable
    assert not ufdi_only.satisfiable

    rows = [
        ("near-ceiling target", "8% sat, 9% unsat",
         "10% sat, 11% unsat"),
        ("UFDI alone at the target", "unsat (max < 3%)",
         "unsat (max < 5%)"),
    ]
    print()
    print(format_table("Case study 2 boundaries — paper vs reproduction",
                       ("quantity", "paper", "measured"), rows))
