"""Warm vs. cold encoding reuse on a Fig. 4-style threshold sweep.

One case, many impact targets — the workload behind the paper's Fig. 4
time-vs-target curves.  The cold path re-encodes the attack model for
every target; the warm path (the sweep engine's encoding-group batching)
builds one :class:`~repro.core.encoding.AttackModelEncoding` and
re-solves each threshold inside a solver ``push()``/``pop()`` scope,
carrying learned clauses across scenarios.

Expected shape: warm total time ≈ cold total time minus (N-1) encoding
constructions, with per-scenario solve time *also* dropping on adjacent
thresholds thanks to clause reuse.  Verdicts are identical by
construction.  Results are written to ``BENCH_incremental_sweep.json``
at the repository root.
"""

import json
from pathlib import Path

import pytest

from repro.runner import ScenarioSpec, SweepConfig, SweepEngine
from repro.runner.engine import execute_scenario
from repro.benchlib import format_table

CASE = "5bus-study1"
TARGETS = (1, 2, 3, 4, 5, 6)
ARTIFACT = Path(__file__).resolve().parent.parent / \
    "BENCH_incremental_sweep.json"


def _specs():
    return [ScenarioSpec.build(CASE, analyzer="smt", target=t,
                               label=f"{CASE}/t{t}") for t in TARGETS]


@pytest.mark.paper("Fig. 4 (threshold sweep, incremental reuse)")
def test_incremental_sweep_warm_vs_cold(benchmark):
    specs = _specs()
    results = {}

    def run_both():
        cold = [execute_scenario(spec, "bench") for spec in specs]
        warm = SweepEngine(SweepConfig(
            workers=1, use_cache=False)).run(specs).outcomes
        results["cold"] = cold
        results["warm"] = warm
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    cold, warm = results["cold"], results["warm"]

    assert [o.satisfiable for o in warm] == \
        [o.satisfiable for o in cold]
    warm_built = sum(o.trace["session"]["encodings_built"] for o in warm)
    cold_built = sum(o.trace["session"]["encodings_built"] for o in cold)
    assert warm_built == 1 and cold_built == len(specs)

    rows = []
    for spec, c, w in zip(specs, cold, warm):
        rows.append((spec.label, c.verdict,
                     f"{c.analysis_seconds:.3f}",
                     f"{w.analysis_seconds:.3f}",
                     "yes" if w.trace["session"]["warm"] else "no"))
    print()
    print(format_table(
        f"incremental sweep — {CASE}, {len(specs)} targets",
        ("scenario", "verdict", "cold (s)", "warm (s)", "warm?"),
        rows))
    cold_total = sum(o.analysis_seconds for o in cold)
    warm_total = sum(o.analysis_seconds for o in warm)
    print(f"cold total: {cold_total:.3f}s "
          f"(encode {sum(o.trace['session']['encode_seconds'] for o in cold):.3f}s)  "
          f"warm total: {warm_total:.3f}s "
          f"(encode {sum(o.trace['session']['encode_seconds'] for o in warm):.3f}s)  "
          f"speedup: {cold_total / warm_total:.2f}x")

    ARTIFACT.write_text(json.dumps({
        "benchmark": "incremental_sweep",
        "case": CASE,
        "targets": list(TARGETS),
        "cold": {
            "total_seconds": round(cold_total, 4),
            "encodings_built": cold_built,
            "encode_seconds": round(sum(
                o.trace["session"]["encode_seconds"] for o in cold), 4),
        },
        "warm": {
            "total_seconds": round(warm_total, 4),
            "encodings_built": warm_built,
            "encode_seconds": round(sum(
                o.trace["session"]["encode_seconds"] for o in warm), 4),
        },
        "speedup": round(cold_total / warm_total, 2),
        "scenarios": [
            {"label": spec.label, "verdict": c.verdict,
             "cold_seconds": round(c.analysis_seconds, 4),
             "warm_seconds": round(w.analysis_seconds, 4)}
            for spec, c, w in zip(specs, cold, warm)],
    }, indent=2) + "\n")
    print(f"artifact written: {ARTIFACT}")
