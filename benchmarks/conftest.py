"""Shared fixtures and helpers for the evaluation benchmarks.

Every benchmark prints the paper-style table or series it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section's content (shapes, not absolute numbers — see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper(ref): the paper table/figure a benchmark "
        "regenerates")


@pytest.fixture(scope="session")
def bench_results():
    """A session-wide scratchpad benchmarks use to assemble series."""
    return {}
