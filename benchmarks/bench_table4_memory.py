"""Table IV: memory requirements of the individual models vs bus count.

The paper reports the SMT solver's memory for the topology attack model
(with state infection) and the OPF model, both growing roughly linearly
with the number of buses.  We measure peak Python allocation of building
and solving each model with ``tracemalloc``.
"""

import pytest

from repro.benchlib import format_table, profile_memory
from repro.core.encoding import (
    AttackEncodingConfig,
    AttackModelEncoding,
    OpfModelEncoding,
)
from repro.grid.cases import get_case

SIZES = {"5bus-study2": 5, "ieee14": 14, "ieee30": 30, "ieee57": 57}

#: paper Table IV rows (MB) for shape comparison.
PAPER = {5: (0.90, 1.55), 14: (1.60, 2.85), 30: (3.10, 5.10),
         57: (5.90, 10.15), 118: (12.20, 22.35)}


@pytest.mark.paper("Table IV")
def test_table4_memory(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, buses in SIZES.items():
            case = get_case(name)
            grid = case.build_grid()

            def build_attack(c=case):
                encoding = AttackModelEncoding(c, AttackEncodingConfig(
                    include_state_infection=True,
                    require_believed_feasibility=False))
                # Building dominates memory; a solve on the smallest
                # system exercises the solver's internal allocation too
                # (solving the larger ones measures time, not memory).
                if c.num_buses <= 5:
                    encoding.solve()
                return encoding
            _, attack_profile = profile_memory(build_attack)

            loads = {b: l.existing for b, l in grid.loads.items()}
            topology = [l.index for l in grid.lines if l.in_service]

            def build_opf(g=grid, t=topology, ld=loads):
                encoding = OpfModelEncoding(g, t, ld)
                encoding.check(None)
                return encoding
            _, opf_profile = profile_memory(build_opf)

            paper_attack, paper_opf = PAPER[buses]
            rows.append((buses, f"{attack_profile.peak_mb:.2f}",
                         f"{opf_profile.peak_mb:.2f}",
                         paper_attack, paper_opf))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(format_table(
        "Table IV — solver memory (MB), measured vs paper",
        ("buses", "attack model (ours)", "OPF model (ours)",
         "attack model (paper)", "OPF model (paper)"), rows))
    # Shape check: memory grows monotonically with bus count.
    attack_mem = [float(r[1]) for r in rows]
    opf_mem = [float(r[2]) for r in rows]
    assert attack_mem == sorted(attack_mem)
    assert opf_mem == sorted(opf_mem)
