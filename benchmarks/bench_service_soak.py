"""Robustness soak for the analysis service (``repro serve``).

Not a paper figure: this is the acceptance measurement for the
fault-tolerant service layer.  A mixed analyze/maximize load is driven
through a live :class:`~repro.service.ServiceServer` by concurrent
clients while a fault plan kills and hangs workers mid-request.  The
soak asserts the robustness contract end to end — zero lost requests,
zero wrong verdicts, every injected fault survived — and records the
measured warm-session hit ratio and retry counts to
``BENCH_service_soak.json`` at the repository root (the numbers quoted
in EXPERIMENTS.md).
"""

import json
import random
import threading
import time
from pathlib import Path

import pytest

from repro.runner import ScenarioSpec
from repro.runner.engine import execute_scenario
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    ServiceUnavailable,
)
from repro.testing import (
    CRASH_WORKER,
    HANG_WORKER,
    Fault,
    ServiceFaultPlan,
)
from repro.benchlib import format_table

CASE = "5bus-study1"
TARGETS = ("1", "2", "3", "4", "5")
TOTAL = 120
DRIVERS = 4
ARTIFACT = Path(__file__).resolve().parent.parent / \
    "BENCH_service_soak.json"

#: labels that get a fault injected under them (6 kills total).
CRASHES = ("req007", "req031", "req063", "req094")
HANGS = ("req018", "req077")


def _load():
    load = []
    for i in range(TOTAL):
        label = f"req{i:03d}"
        if i % 6 == 5:
            spec = {"case": CASE, "analyzer": "fast", "label": label,
                    "tolerance": "1/4", "sample_seed": i}
            load.append((label, "maximize", spec))
        else:
            spec = {"case": CASE, "analyzer": "fast", "label": label,
                    "target": TARGETS[i % len(TARGETS)],
                    "sample_seed": i}
            load.append((label, "analyze", spec))
    return load


def _truth(load):
    verdicts = {}
    for label, kind, spec in load:
        key = (kind, spec.get("target"))
        if key in verdicts:
            continue
        outcome = execute_scenario(ScenarioSpec.build(
            CASE, analyzer="fast", target=spec.get("target"),
            search="maximize" if kind == "maximize" else "decision",
            tolerance=spec.get("tolerance")))
        assert outcome.status == "ok", (key, outcome.error)
        istar = None
        if outcome.max_impact is not None:
            istar = outcome.max_impact["max_increase_percent"]
        verdicts[key] = (outcome.satisfiable, istar)
    return verdicts


@pytest.mark.paper("robustness soak (service layer, not a paper figure)")
def test_service_soak_survives_injected_kills(tmp_path):
    load = _load()
    truth = _truth(load)

    faults = {label: Fault(kind=CRASH_WORKER, times=1)
              for label in CRASHES}
    faults.update({label: Fault(kind=HANG_WORKER, times=1,
                                sleep_seconds=30.0)
                   for label in HANGS})
    plan = ServiceFaultPlan.build(tmp_path / "state", faults)
    plan_path = plan.to_file(tmp_path / "plan.json")

    config = ServiceConfig(
        workers=2, queue_limit=TOTAL, request_timeout=15.0,
        hang_grace=0.5, retry_limit=1,
        cache_dir=str(tmp_path / "cache"), use_cache=True,
        fault_plan=str(plan_path))
    server = ServiceServer(port=0, config=config).start()
    started = time.monotonic()
    try:
        outcomes, failures = {}, {}
        lock = threading.Lock()

        def drive(chunk, seed):
            client = ServiceClient(server.url, retries=6,
                                   backoff_seconds=0.05,
                                   rng=random.Random(seed))
            for label, kind, spec in chunk:
                try:
                    call = client.maximize if kind == "maximize" \
                        else client.analyze
                    result = call(spec, deadline_seconds=5.0)
                    with lock:
                        outcomes[label] = result
                except ServiceUnavailable as exc:
                    with lock:
                        failures[label] = exc

        ServiceClient(server.url).wait_ready(20.0)
        threads = [threading.Thread(
            target=drive, args=(load[i::DRIVERS], 7 * i + 1),
            daemon=True) for i in range(DRIVERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
            assert not thread.is_alive(), "driver thread wedged"
        elapsed = time.monotonic() - started

        assert len(outcomes) + len(failures) == TOTAL   # zero lost
        wrong, degraded = [], []
        for label, kind, spec in load:
            if label not in outcomes:
                degraded.append(label)
                continue
            outcome = outcomes[label]["outcome"]
            if outcome["status"] == "unknown":
                degraded.append(label)
                continue
            want_sat, want_istar = truth[(kind, spec.get("target"))]
            if outcome["satisfiable"] != want_sat:
                wrong.append(label)
            elif kind == "maximize" and want_istar is not None and \
                    outcome["max_impact"]["max_increase_percent"] \
                    != want_istar:
                wrong.append(label)
        assert not wrong, wrong                          # zero wrong

        stats = server.supervisor.stats()
        health = server.supervisor.healthz()
        totals = stats["totals"]
        assert health["restarts"] >= len(CRASHES) + len(HANGS)
        sessions = totals.get("session_hits", 0) + \
            totals.get("session_misses", 0)
        warm_ratio = totals.get("session_hits", 0) / max(1, sessions)
        assert server.drain(timeout=30.0) is True

        record = {
            "requests": TOTAL,
            "injected_kills": len(CRASHES) + len(HANGS),
            "lost": 0,
            "wrong": 0,
            "degraded": len(degraded),
            "restarts": health["restarts"],
            "retried": stats["counters"]["retried"],
            "warm_hit_ratio": round(warm_ratio, 3),
            "cache_hits": totals.get("cache_hits", 0),
            "elapsed_seconds": round(elapsed, 2),
        }
        ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
        print()
        print(format_table(
            "Service soak (120 requests, 6 injected kills)",
            ["metric", "value"],
            [[k, str(v)] for k, v in record.items()]))
    finally:
        server.shutdown()
