"""Fig. 5(b): execution time of the *topology attack model alone* vs
problem size, three attacker-resource scenarios per size.

The paper's observation: the attack model alone grows roughly linearly
and is much cheaper than the OPF model.  The attack model here is the
pure Section III-C encoding — no believed-system OPF block.
"""

import pytest

from benchmarks._helpers import SCENARIOS, scenario_case
from repro.benchlib import format_series, format_table, measured
from repro.core.encoding import AttackEncodingConfig, AttackModelEncoding

SIZES = {"5bus-study2": 5, "ieee14": 14}


@pytest.mark.paper("Fig. 5(b)")
@pytest.mark.parametrize("name", list(SIZES))
def test_fig5b_attack_model_time(benchmark, name, bench_results):
    buses = SIZES[name]
    times = []
    verdicts = []

    def run_all():
        times.clear()
        verdicts.clear()
        for seed in SCENARIOS:
            case = scenario_case(name, seed)

            def solve(c=case):
                encoding = AttackModelEncoding(c, AttackEncodingConfig(
                    require_believed_feasibility=False))
                return encoding.solve()
            solution, elapsed = measured(solve)
            times.append(elapsed)
            verdicts.append("sat" if solution is not None else "unsat")
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    bench_results.setdefault("fig5b", {})[buses] = sum(times) / len(times)

    print()
    print(format_table(
        f"Fig. 5(b) — attack model alone, {name} ({buses} buses)",
        ("scenario", "verdict", "time (s)"),
        [(seed, verdict, f"{t:.3f}")
         for seed, verdict, t in zip(SCENARIOS, verdicts, times)]))
    if buses == max(SIZES.values()):
        print(format_series("Fig. 5(b) average attack-model time",
                            "buses", "seconds",
                            dict(sorted(bench_results["fig5b"].items()))))
        fig5a = bench_results.get("fig5a", {})
        for b in sorted(set(fig5a) & set(bench_results["fig5b"])):
            opf_avg = sum(fig5a[b].values()) / len(fig5a[b])
            print(f"   {b} buses: attack model "
                  f"{bench_results['fig5b'][b]:.3f}s vs OPF model "
                  f"{opf_avg:.3f}s")
