"""Fig. 4(b): combined-model execution time vs bus count, topology
attacks *including* state infection.

Runs on the sweep engine (:mod:`repro.runner`), like Fig. 4(a) — see
that module for the REPRO_BENCH_WORKERS / REPRO_BENCH_CACHE knobs.

Expected shape (paper): same growth as Fig. 4(a) but uniformly slower —
state infection multiplies the attack search space.
"""

from fractions import Fraction

import pytest

from benchmarks._helpers import SCENARIOS, SWEEP, combined_specs, run_sweep
from repro.benchlib import format_series, format_table


@pytest.mark.paper("Fig. 4(b)")
@pytest.mark.parametrize("name", list(SWEEP))
def test_fig4b_combined_time_with_state(benchmark, name, bench_results):
    buses = SWEEP[name]
    specs = combined_specs(name, with_state=True, percent=Fraction(1))
    outcomes = []

    def run_all():
        outcomes.clear()
        outcomes.extend(run_sweep(specs).outcomes)
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    times = [outcome.analysis_seconds for outcome in outcomes]
    average = sum(times) / len(times)
    bench_results.setdefault("fig4b", {})[buses] = average

    print()
    print(format_table(
        f"Fig. 4(b) — {name} ({buses} buses), 3 scenarios, with states",
        ("scenario", "verdict", "time (s)", "smt calls", "cache"),
        [(seed, outcome.verdict, f"{outcome.analysis_seconds:.3f}",
          outcome.solver_calls, "hit" if outcome.cache_hit else "miss")
         for seed, outcome in zip(SCENARIOS, outcomes)]))
    if buses == max(SWEEP.values()):
        print(format_series("Fig. 4(b) average combined-model time",
                            "buses", "seconds",
                            dict(sorted(bench_results["fig4b"].items()))))
        fig4a = bench_results.get("fig4a", {})
        shared = sorted(set(fig4a) & set(bench_results["fig4b"]))
        if shared:
            slower = sum(
                bench_results["fig4b"][b] >= 0.5 * fig4a[b]
                for b in shared)
            print(f"   with-state slower or comparable at "
                  f"{slower}/{len(shared)} sizes "
                  f"(paper: uniformly slower)")
