"""Fig. 4(b): combined-model execution time vs bus count, topology
attacks *including* state infection.

Expected shape (paper): same growth as Fig. 4(a) but uniformly slower —
state infection multiplies the attack search space.
"""

from fractions import Fraction

import pytest

from benchmarks._helpers import SCENARIOS, SWEEP, combined_analysis
from repro.benchlib import format_series, format_table, measured


@pytest.mark.paper("Fig. 4(b)")
@pytest.mark.parametrize("name", list(SWEEP))
def test_fig4b_combined_time_with_state(benchmark, name, bench_results):
    buses = SWEEP[name]
    times = []
    verdicts = []

    def run_all():
        times.clear()
        verdicts.clear()
        for seed in SCENARIOS:
            report, elapsed = measured(
                lambda s=seed: combined_analysis(
                    name, s, with_state=True, percent=Fraction(1)))
            times.append(elapsed)
            verdicts.append("sat" if report.satisfiable else "unsat")
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    average = sum(times) / len(times)
    bench_results.setdefault("fig4b", {})[buses] = average

    print()
    print(format_table(
        f"Fig. 4(b) — {name} ({buses} buses), 3 scenarios, with states",
        ("scenario", "verdict", "time (s)"),
        [(seed, verdict, f"{t:.3f}")
         for seed, verdict, t in zip(SCENARIOS, verdicts, times)]))
    if buses == max(SWEEP.values()):
        print(format_series("Fig. 4(b) average combined-model time",
                            "buses", "seconds",
                            dict(sorted(bench_results["fig4b"].items()))))
        fig4a = bench_results.get("fig4a", {})
        shared = sorted(set(fig4a) & set(bench_results["fig4b"]))
        if shared:
            slower = sum(
                bench_results["fig4b"][b] >= 0.5 * fig4a[b]
                for b in shared)
            print(f"   with-state slower or comparable at "
                  f"{slower}/{len(shared)} sizes "
                  f"(paper: uniformly slower)")
