"""Fig. 4(a): combined-model execution time vs bus count, topology
attacks *without* state infection, three random attacker scenarios per
problem size, 1-2% impact target.

Expected shape (paper): time grows super-linearly (~quadratically) with
the number of buses; satisfiable cases complete faster than unsatisfiable
ones (Fig. 4(c)).
"""

from fractions import Fraction

import pytest

from benchmarks._helpers import SCENARIOS, SWEEP, combined_analysis
from repro.benchlib import format_series, format_table, measured


@pytest.mark.paper("Fig. 4(a)")
@pytest.mark.parametrize("name", list(SWEEP))
def test_fig4a_combined_time_no_state(benchmark, name, bench_results):
    buses = SWEEP[name]
    times = []
    verdicts = []

    def run_all():
        times.clear()
        verdicts.clear()
        for seed in SCENARIOS:
            report, elapsed = measured(
                lambda s=seed: combined_analysis(
                    name, s, with_state=False, percent=Fraction(1)))
            times.append(elapsed)
            verdicts.append("sat" if report.satisfiable else "unsat")
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    average = sum(times) / len(times)
    bench_results.setdefault("fig4a", {})[buses] = average

    print()
    print(format_table(
        f"Fig. 4(a) — {name} ({buses} buses), 3 scenarios",
        ("scenario", "verdict", "time (s)"),
        [(seed, verdict, f"{t:.3f}")
         for seed, verdict, t in zip(SCENARIOS, verdicts, times)]))
    series = bench_results.get("fig4a", {})
    if buses == max(SWEEP.values()):
        print(format_series("Fig. 4(a) average combined-model time",
                            "buses", "seconds", dict(sorted(
                                series.items()))))
