"""Fig. 4(a): combined-model execution time vs bus count, topology
attacks *without* state infection, three random attacker scenarios per
problem size, 1-2% impact target.

Runs on the sweep engine (:mod:`repro.runner`): the three attacker
scenarios of each size form one sweep, so ``REPRO_BENCH_WORKERS=4`` fans
them out over worker processes and ``REPRO_BENCH_CACHE=.repro-cache``
short-circuits reruns from the result cache.

Expected shape (paper): time grows super-linearly (~quadratically) with
the number of buses; satisfiable cases complete faster than unsatisfiable
ones (Fig. 4(c)).
"""

from fractions import Fraction

import pytest

from benchmarks._helpers import SCENARIOS, SWEEP, combined_specs, run_sweep
from repro.benchlib import format_series, format_table


@pytest.mark.paper("Fig. 4(a)")
@pytest.mark.parametrize("name", list(SWEEP))
def test_fig4a_combined_time_no_state(benchmark, name, bench_results):
    buses = SWEEP[name]
    specs = combined_specs(name, with_state=False, percent=Fraction(1))
    outcomes = []

    def run_all():
        outcomes.clear()
        outcomes.extend(run_sweep(specs).outcomes)
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    times = [outcome.analysis_seconds for outcome in outcomes]
    average = sum(times) / len(times)
    bench_results.setdefault("fig4a", {})[buses] = average

    print()
    print(format_table(
        f"Fig. 4(a) — {name} ({buses} buses), 3 scenarios",
        ("scenario", "verdict", "time (s)", "smt calls", "cache"),
        [(seed, outcome.verdict, f"{outcome.analysis_seconds:.3f}",
          outcome.solver_calls, "hit" if outcome.cache_hit else "miss")
         for seed, outcome in zip(SCENARIOS, outcomes)]))
    series = bench_results.get("fig4a", {})
    if buses == max(SWEEP.values()):
        print(format_series("Fig. 4(a) average combined-model time",
                            "buses", "seconds", dict(sorted(
                                series.items()))))
