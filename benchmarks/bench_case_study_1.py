"""Case study 1 (paper Table II + Section III-G).

Regenerates the paper's first worked example: on the 5-bus system with
the Table-II scenario, a stealthy exclusion attack on line 6 exists that
raises the believed-optimal generation cost by "around 4%", altering only
measurements {6, 13, 17, 18} across buses {3, 4}.
"""

import pytest

from repro.benchlib import format_table
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import get_case


@pytest.mark.paper("Table II / case study 1")
def test_case_study_1(benchmark):
    case = get_case("5bus-study1")

    def run():
        analyzer = ImpactAnalyzer(case)
        return analyzer, analyzer.analyze(
            ImpactQuery(verify_with_smt_opf=True))

    (analyzer, report) = benchmark.pedantic(run, rounds=3, iterations=1)

    assert report.satisfiable
    assert report.attack.excluded == [6]
    assert report.attack.altered_measurements == [6, 13, 17, 18]
    assert report.attack.compromised_buses == [3, 4]
    assert report.smt_opf_unsat_confirmed

    rows = [
        ("verdict", "sat", "sat"),
        ("topology attack", "exclude line 6", f"exclude line "
         f"{report.attack.excluded[0]}"),
        ("altered measurements", "{6, 13, 17, 18}",
         str(set(report.attack.altered_measurements))),
        ("buses compromised", "{3, 4}",
         str(set(report.attack.compromised_buses))),
        ("cost increase", "~4% ($1650 vs $1580 = 4.4%)",
         f"{float(report.achieved_increase_percent):.2f}%"),
    ]
    print()
    print(format_table("Case study 1 — paper vs reproduction",
                       ("quantity", "paper", "measured"), rows))
    print(report.render(MeasurementPlan.from_case(case)))
