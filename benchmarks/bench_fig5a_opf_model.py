"""Fig. 5(a): execution time of the *OPF model alone* vs problem size.

The paper's observation: the OPF model dominates the attack model, and
the tighter the cost constraint sits to the optimum, the longer the
solver takes (fewer satisfying dispatches to find).
"""

from fractions import Fraction

import pytest

from repro.benchlib import format_series, format_table, measured
from repro.core.encoding import OpfModelEncoding
from repro.grid.cases import get_case
from repro.opf import solve_dc_opf

import os

SIZES = {"5bus-study2": 5, "ieee14": 14, "ieee30": 30}
if os.environ.get("REPRO_BENCH_SCALE") == "paper":
    SIZES["ieee57"] = 57

#: threshold = optimum * factor; closer to 1 = tighter.
TIGHTNESS = (Fraction(101, 100), Fraction(11, 10), Fraction(3, 2))


@pytest.mark.paper("Fig. 5(a)")
@pytest.mark.parametrize("name", list(SIZES))
def test_fig5a_opf_model_time(benchmark, name, bench_results):
    buses = SIZES[name]
    grid = get_case(name).build_grid()
    loads = {b: l.existing for b, l in grid.loads.items()}
    optimum = solve_dc_opf(grid, method="highs").require_feasible().cost
    topology = [l.index for l in grid.lines if l.in_service]
    times = {}

    def run_all():
        times.clear()
        for factor in TIGHTNESS:
            def check(f=factor):
                encoding = OpfModelEncoding(grid, topology, loads)
                return encoding.check(optimum * f)
            sat, elapsed = measured(check)
            assert sat  # threshold above the optimum: always satisfiable
            times[float(factor)] = elapsed
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    bench_results.setdefault("fig5a", {})[buses] = times

    print()
    print(format_table(
        f"Fig. 5(a) — OPF model, {name} ({buses} buses)",
        ("threshold / optimum", "time (s)"),
        [(f"{factor:.2f}x", f"{t:.4f}") for factor, t in times.items()]))
    if buses == max(SIZES.values()):
        series = {b: sum(v.values()) / len(v)
                  for b, v in sorted(bench_results["fig5a"].items())}
        print(format_series("Fig. 5(a) average OPF-model time", "buses",
                            "seconds", series))
        for b, v in sorted(bench_results["fig5a"].items()):
            ordered = [v[float(f)] for f in TIGHTNESS]
            print(f"   {b} buses: tight {ordered[0]:.4f}s vs loose "
                  f"{ordered[-1]:.4f}s (paper: tighter is slower)")
