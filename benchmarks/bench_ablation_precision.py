"""Ablation: attack-vector dedup precision (paper Section IV-A, idea 1).

The paper treats two attack vectors as identical when they agree to two
decimal digits; this bench sweeps the precision and shows the trade-off
the paper's choice makes: coarse precision prunes the continuous space
after few candidates, fine precision enumerates many near-identical
vectors.

The workload disables structure-level pruning so the per-vector blocking
behavior is isolated, and uses an unreachable target so the solver must
exhaust the (quantized) space.
"""

from fractions import Fraction

import pytest

from repro.benchlib import format_table, measured
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case

PRECISIONS = (1, 2, 3)


@pytest.mark.paper("Section IV-A idea 1 (ablation)")
def test_ablation_blocking_precision(benchmark):
    case = get_case("5bus-study1")
    rows = []

    def run_all():
        rows.clear()
        for precision in PRECISIONS:
            def analyze(p=precision):
                analyzer = ImpactAnalyzer(case)
                return analyzer.analyze(ImpactQuery(
                    target_increase_percent=Fraction(20),
                    precision=p,
                    extremize_structures=False,
                    max_candidates=25))
            report, elapsed = measured(analyze)
            assert not report.satisfiable
            rows.append((precision, report.candidates_examined,
                         f"{elapsed:.3f}"))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        "Ablation — blocking precision (unsat workload, cap 25 vectors)",
        ("digits", "vectors examined", "time (s)"), rows))
    # Coarser precision must not need more candidates than finer.
    examined = [r[1] for r in rows]
    assert examined[0] <= examined[-1]
