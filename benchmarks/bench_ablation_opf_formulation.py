"""Ablation: angle-formulation OPF vs shift-factor OPF with LODF/LCDF
(paper Section IV-A, idea 2).

Shows the speedup that motivated the paper's use of distribution factors
for the large systems: for a sweep of single-line exclusion candidates,
re-solving the angle formulation from scratch vs reusing one PTDF
factorization with LODF corrections.
"""

import pytest

from repro.benchlib import format_table, measured
from repro.grid.cases import get_case
from repro.opf import ShiftFactorOpf, TopologyChange, solve_dc_opf

CASES = ("ieee14", "ieee30", "ieee57")


@pytest.mark.paper("Section IV-A idea 2 (ablation)")
@pytest.mark.parametrize("name", CASES)
def test_ablation_opf_formulation(benchmark, name):
    grid = get_case(name).build_grid()
    all_lines = [l.index for l in grid.lines]
    candidates = [
        i for i in all_lines[: max(10, len(all_lines) // 4)]
        if grid.is_connected([j for j in all_lines if j != i])
    ]
    results = {}

    def run_all():
        results.clear()

        def angle_sweep():
            costs = []
            for out in candidates:
                remaining = [j for j in all_lines if j != out]
                costs.append(solve_dc_opf(grid, line_indices=remaining,
                                          method="highs").cost)
            return costs
        angle_costs, angle_time = measured(angle_sweep)
        results["angle formulation"] = angle_time

        def factor_sweep():
            solver = ShiftFactorOpf(grid)
            costs = []
            for out in candidates:
                costs.append(solver.solve(
                    change=TopologyChange("exclude", out)).cost)
            return costs
        factor_costs, factor_time = measured(factor_sweep)
        results["shift factors + LODF"] = factor_time

        # Both formulations agree on every candidate.
        for a, b in zip(angle_costs, factor_costs):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert abs(float(a) - float(b)) < 1e-4 * max(1.0, float(a))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = results["angle formulation"] / max(
        results["shift factors + LODF"], 1e-9)
    print()
    print(format_table(
        f"Ablation — OPF formulation, {name} "
        f"({len(candidates)} exclusion candidates)",
        ("formulation", "sweep time (s)"),
        [(k, f"{v:.4f}") for k, v in results.items()]
        + [("speedup", f"{speedup:.1f}x")]))
