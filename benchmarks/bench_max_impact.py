"""Bisection vs. linear sweep to the maximum achievable impact I*.

The paper reports each case study's impact *ceiling* ("around 4%",
"below 9%") by re-running the decision query at increasing targets.
:class:`~repro.search.MaxImpactSearch` exploits the monotonicity of
sat-at-threshold to bisect instead: gallop to an unsat upper bound,
then halve the bracket to tolerance — O(log((hi-lo)/eps)) decision
queries against one warm incremental session.

This benchmark pits that search against the naive alternative at the
same resolution: a linear sweep probing 0, eps, 2*eps, ... until the
first unsat answer.  Both run warm (same session machinery), so the
measured gap is purely the probe-count gap.  Both must land on the
same I*.  Two resolutions are measured: at the default 1/8 the probe
counts differ ~4x but wall time is near parity (the linear sweep's
probes are almost all cheap warm *sat* re-solves, while bisection
spends half its probes on the expensive unsat side); at 1/64 the
linear sweep's O(I*/eps) probe bill dominates and bisection wins
outright.  Results are written to ``BENCH_max_impact.json`` at the
repository root.
"""

import json
import time
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core import ImpactAnalyzer
from repro.grid.cases import get_case
from repro.search import MaxImpactSearch
from repro.benchlib import format_table

CASE = "5bus-study1"
TOLERANCES = (Fraction(1, 8), Fraction(1, 64))
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_max_impact.json"


def _linear_sweep(analyzer, step):
    """Largest multiple of ``step`` still satisfiable, by linear probing."""
    calls = 0
    percent = Fraction(0)
    last_sat = None
    while True:
        report = analyzer.solve_at(percent)
        calls += 1
        if not report.satisfiable:
            return last_sat, calls
        last_sat = percent
        percent += step


@pytest.mark.paper("Sec. III-G (maximum-impact ceiling)")
def test_max_impact_bisection_vs_linear(benchmark):
    case = get_case(CASE)
    results = {}

    def run_all():
        configs = {}
        for tol in TOLERANCES:
            t0 = time.perf_counter()
            bisect = MaxImpactSearch(
                ImpactAnalyzer(case, incremental=True),
                tolerance=tol).run()
            t1 = time.perf_counter()
            linear_istar, linear_calls = _linear_sweep(
                ImpactAnalyzer(case, incremental=True), tol)
            t2 = time.perf_counter()
            configs[tol] = {
                "bisect": bisect, "bisect_seconds": t1 - t0,
                "linear_istar": linear_istar,
                "linear_calls": linear_calls,
                "linear_seconds": t2 - t1,
            }
        t0 = time.perf_counter()
        cold = MaxImpactSearch(ImpactAnalyzer(case),
                               tolerance=TOLERANCES[0]).run()
        results["cold"] = cold
        results["cold_seconds"] = time.perf_counter() - t0
        results["configs"] = configs
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    cold = results["cold"]
    assert cold.status == "complete"
    assert cold.encodings_built == cold.solve_at_calls

    rows = []
    artifact_configs = []
    for tol, r in results["configs"].items():
        bisect = r["bisect"]
        assert bisect.status == "complete"
        assert bisect.satisfiable
        # Same grid, same answer: the bisection's lower bound is the
        # largest satisfiable multiple of eps, exactly what the linear
        # sweep finds.
        assert bisect.lower_bound == r["linear_istar"]
        assert bisect.encodings_built == 1
        assert bisect.solve_at_calls < r["linear_calls"]
        speedup = r["linear_seconds"] / r["bisect_seconds"]
        rows.append((str(tol), str(bisect.lower_bound),
                     f"{bisect.solve_at_calls} / {r['linear_calls']}",
                     f"{r['bisect_seconds']:.3f} / "
                     f"{r['linear_seconds']:.3f}",
                     f"{speedup:.2f}x"))
        artifact_configs.append({
            "tolerance": str(tol),
            "max_increase_percent": str(bisect.lower_bound),
            "bracket": [str(bisect.lower_bound),
                        str(bisect.upper_bound)],
            "bisection_warm": {
                "solve_at_calls": bisect.solve_at_calls,
                "encodings_built": bisect.encodings_built,
                "warm_solves": bisect.warm_solves,
                "seconds": round(r["bisect_seconds"], 4),
            },
            "linear_sweep_warm": {
                "solve_at_calls": r["linear_calls"],
                "seconds": round(r["linear_seconds"], 4),
            },
            "probe_ratio": round(
                r["linear_calls"] / bisect.solve_at_calls, 2),
            "speedup_vs_linear": round(speedup, 2),
        })
    assert results["configs"][TOLERANCES[0]]["bisect"].lower_bound == \
        cold.lower_bound

    print()
    print(format_table(
        f"max-impact search — {CASE}, bisection vs linear (warm)",
        ("tolerance", "I*", "calls (bis/lin)", "time s (bis/lin)",
         "speedup"),
        rows))
    coarse = results["configs"][TOLERANCES[0]]
    print(f"I* = {coarse['bisect'].lower_bound} "
          f"({float(coarse['bisect'].lower_bound):.3f}%)  "
          f"warm-vs-cold bisection at {TOLERANCES[0]}: "
          f"{results['cold_seconds'] / coarse['bisect_seconds']:.2f}x "
          f"({cold.encodings_built} cold encodings vs 1)")

    ARTIFACT.write_text(json.dumps({
        "benchmark": "max_impact",
        "case": CASE,
        "configs": artifact_configs,
        "bisection_cold": {
            "tolerance": str(TOLERANCES[0]),
            "solve_at_calls": cold.solve_at_calls,
            "encodings_built": cold.encodings_built,
            "seconds": round(results["cold_seconds"], 4),
            "warm_speedup": round(
                results["cold_seconds"] / coarse["bisect_seconds"], 2),
        },
    }, indent=2) + "\n")
    print(f"artifact written: {ARTIFACT}")
