"""Fig. 4(c): combined-model execution time in *unsatisfiable* cases.

Runs on the sweep engine (:mod:`repro.runner`) like Figs. 4(a)/4(b).

Expected shape (paper): unsat verdicts take longer than sat verdicts at
the same size — the solver must exhaust the attack-vector space to
conclude no attack achieves the impact.

The unsatisfiable workload uses an unreachable impact target: just above
the known ceiling for the SMT-analyzed sizes (so the solver genuinely
exhausts the attack-vector space rather than being cut off by the
necessary-condition pruning) and a flat 40% for the fast-analyzer sizes.
"""

from fractions import Fraction

import pytest

from benchmarks._helpers import (
    SCENARIOS,
    SMT_SIZES,
    SWEEP,
    combined_specs,
    run_sweep,
)
from repro.benchlib import format_series, format_table


@pytest.mark.paper("Fig. 4(c)")
@pytest.mark.parametrize("name", list(SWEEP))
def test_fig4c_combined_time_unsat(benchmark, name, bench_results):
    buses = SWEEP[name]
    percent = Fraction(6) if name in SMT_SIZES else Fraction(40)
    specs = combined_specs(name, with_state=False, percent=percent)
    outcomes = []

    def run_all():
        outcomes.clear()
        outcomes.extend(run_sweep(specs).outcomes)
        for outcome in outcomes:
            assert not outcome.satisfiable
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    times = [outcome.analysis_seconds for outcome in outcomes]
    average = sum(times) / len(times)
    bench_results.setdefault("fig4c", {})[buses] = average

    print()
    print(format_table(
        f"Fig. 4(c) — {name} ({buses} buses), unsat cases",
        ("scenario", "verdict", "time (s)", "smt calls", "cache"),
        [(seed, outcome.verdict, f"{outcome.analysis_seconds:.3f}",
          outcome.solver_calls, "hit" if outcome.cache_hit else "miss")
         for seed, outcome in zip(SCENARIOS, outcomes)]))
    if buses == max(SWEEP.values()):
        print(format_series("Fig. 4(c) average unsat time", "buses",
                            "seconds",
                            dict(sorted(bench_results["fig4c"].items()))))
        fig4a = bench_results.get("fig4a", {})
        shared = sorted(set(fig4a) & set(bench_results["fig4c"]))
        for b in shared:
            ratio = bench_results["fig4c"][b] / max(fig4a[b], 1e-9)
            print(f"   {b} buses: unsat/sat time ratio = {ratio:.2f} "
                  f"(paper: > 1)")
