"""Chaos benchmark for the distributed sweep fabric (``repro coordinate``).

Not a paper figure: this is the acceptance measurement for the
distributed sweep fabric.  A 200-cell sweep grid is driven through a
real ``repro coordinate`` process with three spawned ``repro worker``
subprocesses while a fault plan injects a worker crash, a hang, a
straggler, a network partition and a silent lease abandonment — plus
one coordinator kill right after a journaled commit.  Re-running the
identical command resumes the fleet from the journal.  The benchmark
asserts the fabric contract end to end — **zero lost cells, zero
duplicated cells, outcomes deterministically identical to a serial
``repro sweep``** — and records the measured lease/steal/expiry
traffic and recovery counts to ``BENCH_fabric.json`` at the repository
root (the numbers quoted in EXPERIMENTS.md).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, _grid_specs
from repro.fabric import read_events
from repro.runner import SweepConfig, SweepEngine
from repro.runner.trace import deterministic_outcome_view
from repro.testing import (
    COORDINATOR_KILL,
    CRASH_WORKER,
    HANG_WORKER,
    LEASE_LOSS,
    PARTITION,
    STRAGGLER,
    Fault,
    FabricFaultPlan,
)
from repro.benchlib import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_fabric.json"

#: 2 cases x 20 attacker seeds x 5 targets = 200 cells, fast analyzer
#: (the SMT analyzers' witnesses are not unit-boundary-deterministic).
GRID_ARGS = ["--cases", "5bus-study1,ieee14",
             "--targets", "1,2,3,4,5",
             "--scenarios", "20", "--analyzer", "fast"]
WORKERS = 3


def _specs():
    args = build_parser().parse_args(["coordinate"] + GRID_ARGS)
    return _grid_specs(args)


def _truth(specs):
    started = time.monotonic()
    sweep = SweepEngine(SweepConfig(workers=1, use_cache=False)).run(specs)
    elapsed = time.monotonic() - started
    assert not sweep.failures, sweep.failures
    views = {}
    for outcome in sweep.outcomes:
        views[outcome.spec.label] = \
            deterministic_outcome_view(outcome.to_dict())
    return views, elapsed


def _fault_plan(specs, tmp_path):
    labels = [spec.label for spec in specs]
    faults = {
        labels[10]: Fault(kind=CRASH_WORKER, times=1),
        labels[60]: Fault(kind=HANG_WORKER, times=1, sleep_seconds=4.0),
        labels[100]: Fault(kind=STRAGGLER, times=1, sleep_seconds=4.0),
        labels[140]: Fault(kind=PARTITION, times=1),
        labels[180]: Fault(kind=LEASE_LOSS, times=1),
        # The resume path's worst case: die right after a journaled
        # commit, mid-grid.
        labels[40]: Fault(kind=COORDINATOR_KILL, times=1),
    }
    plan = FabricFaultPlan.build(tmp_path / "state", faults)
    return plan.to_file(tmp_path / "faults.json"), len(faults)


def _coordinate(tmp_path, plan_path, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro", "coordinate"] \
        + GRID_ARGS + [
        "--journal", str(tmp_path / "j.jsonl"), "--no-cache",
        "--spawn", str(WORKERS), "--unit-cells", "5",
        "--lease-ttl", "2", "--steal-after", "2",
        "--trace", str(tmp_path / "trace.json"),
        "--fault-plan", str(plan_path)]
    started = time.monotonic()
    run = subprocess.run(command, cwd=str(tmp_path), env=env,
                         capture_output=True, text=True,
                         timeout=timeout)
    return run, time.monotonic() - started


@pytest.mark.paper("robustness chaos (sweep fabric, not a paper figure)")
def test_fabric_chaos_zero_lost_zero_duplicated(tmp_path):
    specs = _specs()
    truth, serial_seconds = _truth(specs)
    plan_path, injected = _fault_plan(specs, tmp_path)

    # First run dies with the resumable exit code when the injected
    # coordinator kill lands right after a journaled commit.
    first, first_seconds = _coordinate(tmp_path, plan_path)
    assert first.returncode == 5, (first.returncode, first.stdout,
                                   first.stderr)

    # The identical command resumes the fleet from the journal and
    # completes the grid.
    rerun, rerun_seconds = _coordinate(tmp_path, plan_path)
    assert rerun.returncode == 0, (rerun.returncode, rerun.stdout,
                                   rerun.stderr)
    assert "(resumed from journal)" in rerun.stdout
    banner = [line for line in rerun.stdout.splitlines()
              if "already resolved" in line][0]
    recovered = int(banner.split("journal)")[0].rsplit(",", 1)[1])
    assert recovered >= 1, banner

    # Zero lost, zero duplicated, outcomes identical to the serial run.
    trace = json.loads((tmp_path / "trace.json").read_text())
    views = {}
    for payload in trace["scenarios"]:
        label = payload["spec"]["label"]
        assert label not in views, f"duplicate cell: {label}"
        views[label] = deterministic_outcome_view(payload)
    assert set(views) == set(truth)                      # zero lost
    wrong = [label for label in truth if views[label] != truth[label]]
    assert not wrong, wrong                              # zero wrong

    # Lease traffic across both generations (the rotated generation-0
    # journal plus the live generation-1 file).
    generations = [read_events(tmp_path / "j.jsonl.1"),
                   read_events(tmp_path / "j.jsonl")]
    for gen in generations:
        commits = [e["unit"] for e in gen if e["event"] == "commit"]
        assert len(commits) == len(set(commits)), commits
    events = generations[0] + generations[1]
    kinds = [e["event"] for e in events]
    redispatched = sum(1 for e in events
                       if e["event"] in ("lease", "steal")
                       and e.get("attempt", 1) >= 2)
    assert redispatched >= 1, kinds

    record = {
        "cells": len(specs),
        "workers": WORKERS,
        "injected_faults": injected,
        "coordinator_kills": 1,
        "lost": 0,
        "duplicated": 0,
        "wrong": 0,
        "recovered_from_journal": recovered,
        "leases": kinds.count("lease"),
        "steals": kinds.count("steal"),
        "expiries": kinds.count("expire"),
        "redispatched": redispatched,
        "duplicate_commits": kinds.count("duplicate"),
        "committed_units": kinds.count("commit"),
        "serial_seconds": round(serial_seconds, 2),
        "fabric_seconds": round(first_seconds + rerun_seconds, 2),
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(format_table(
        "Fabric chaos (200 cells, 5 worker faults, 1 coordinator kill)",
        ["metric", "value"],
        [[k, str(v)] for k, v in record.items()]))
