"""Tests for the benchmark harness support library."""

import time

import pytest

from repro.benchlib import (
    format_series,
    format_table,
    measured,
    profile_memory,
    randomize_attacker,
    scenario_seeds,
)
from repro.grid.cases import get_case


class TestScenarios:
    def test_seeds_are_stable(self):
        assert scenario_seeds(3) == [2014, 2015, 2016]

    def test_randomization_is_deterministic(self):
        case = get_case("ieee14")
        a = randomize_attacker(case, 7)
        b = randomize_attacker(case, 7)
        assert a.resource_measurements == b.resource_measurements
        assert a.resource_buses == b.resource_buses
        assert [m.secured for m in a.measurement_specs] == \
            [m.secured for m in b.measurement_specs]

    def test_randomization_varies_with_seed(self):
        case = get_case("ieee57")
        variants = {randomize_attacker(case, s).resource_measurements
                    for s in range(8)}
        assert len(variants) > 1

    def test_grid_untouched(self):
        case = get_case("ieee14")
        variant = randomize_attacker(case, 3)
        assert variant.line_specs == case.line_specs
        assert variant.generators == case.generators
        assert variant.loads == case.loads

    def test_only_adds_protection(self):
        case = get_case("ieee14")
        variant = randomize_attacker(case, 3)
        for original, varied in zip(case.measurement_specs,
                                    variant.measurement_specs):
            if original.secured:
                assert varied.secured
            assert varied.taken == original.taken


class TestMeasure:
    def test_measured_returns_result_and_time(self):
        result, elapsed = measured(lambda: 42)
        assert result == 42
        assert elapsed >= 0

    def test_measured_times_sleep(self):
        _, elapsed = measured(lambda: time.sleep(0.02))
        assert elapsed >= 0.015

    def test_profile_memory_tracks_allocation(self):
        def allocate():
            return [0] * 300000
        result, profile = profile_memory(allocate)
        assert len(result) == 300000
        assert profile.peak_mb > 1.0
        assert profile.elapsed_seconds >= 0

    def test_profile_memory_stops_tracing_on_error(self):
        import tracemalloc
        with pytest.raises(RuntimeError):
            profile_memory(lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert not tracemalloc.is_tracing()

    def test_profile_memory_is_reentrant(self):
        # Nested profiling (e.g. pytest-memray or an outer profile_memory
        # already tracing) must not stop the outer tracemalloc session.
        import tracemalloc

        def outer():
            result, profile = profile_memory(lambda: [0] * 200000)
            assert len(result) == 200000
            assert profile.peak_mb > 0
            assert tracemalloc.is_tracing()  # outer session still live
            return result

        _, outer_profile = profile_memory(outer)
        assert not tracemalloc.is_tracing()
        assert outer_profile.peak_mb > 0

    def test_profile_memory_preserves_external_session(self):
        import tracemalloc
        tracemalloc.start()
        try:
            profile_memory(lambda: [0] * 100000)
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()
        assert not tracemalloc.is_tracing()


class TestTables:
    def test_format_table(self):
        text = format_table("T", ("a", "bb"), [(1, 2.5), ("x", "y")])
        assert "== T ==" in text
        assert "a" in text and "bb" in text
        assert "2.5" in text

    def test_format_series_bars_scale(self):
        text = format_series("S", "x", "y", {1: 1.0, 2: 2.0})
        lines = text.splitlines()
        bar_1 = next(l for l in lines if l.strip().startswith("1 |"))
        bar_2 = next(l for l in lines if l.strip().startswith("2 |"))
        assert bar_2.count("#") > bar_1.count("#")

    def test_format_series_empty_safe(self):
        assert "== S ==" in format_series("S", "x", "y", {})
