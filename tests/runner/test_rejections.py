"""Rejected-input plumbing through the sweep engine and cache.

Preflight rejections are deterministic verdicts: they must be cached
and served like ``ok`` results, survive a diagnostics round-trip, and
be protected against the two ways a wrong rejection could get in —
fault-corrupted worker specs and stale cache entries.
"""

import pytest

from repro.runner import (
    ResultCache,
    ScenarioSpec,
    SweepConfig,
    SweepEngine,
)
from repro.runner.engine import (
    execute_scenario,
    parse_failure_report,
    verify_cached_outcome,
)
from repro.runner.trace import (
    DEGENERATE_CASE,
    INVALID_INPUT,
    OK,
    ScenarioOutcome,
)
from repro.grid.caseio import write_case
from repro.grid.cases import get_case
from repro.testing import CORRUPT_CASE, Fault, FaultPlan
from repro.validation import ValidationReport


def clean_text() -> str:
    return write_case(get_case("5bus-study1"))


def islanded_text() -> str:
    text = clean_text()
    text = text.replace("3 2 3 5.05 0.05 1 1 1 1 1",
                        "3 2 3 5.05 0.05 1 0 1 1 1")
    return text.replace("6 3 4 5.85 0.2 1 1 0 0 1",
                        "6 3 4 5.85 0.2 1 0 0 0 1")


def spec_for(text, label="cell"):
    return ScenarioSpec.build("inline", analyzer="fast", case_text=text,
                              label=label)


class TestExecuteScenario:
    def test_unparsable_text_is_invalid_input(self):
        outcome = execute_scenario(spec_for("not a case file"))
        assert outcome.status == INVALID_INPUT
        assert outcome.error
        report = outcome.diagnostics_report()
        assert report is not None and report.has("parse.malformed")

    def test_islanded_case_is_degenerate(self):
        outcome = execute_scenario(spec_for(islanded_text()))
        assert outcome.status == DEGENERATE_CASE
        assert "topology.disconnected" in outcome.error
        # the outcome round-trips its diagnostics payload losslessly.
        rebuilt = ScenarioOutcome.from_dict(outcome.to_dict())
        assert rebuilt.diagnostics == outcome.diagnostics
        assert rebuilt.diagnostics_report().fatal_status() \
            == DEGENERATE_CASE

    def test_field_error_carries_its_path(self):
        outcome = execute_scenario(
            spec_for(clean_text().replace("5.05", "1/0")))
        assert outcome.status == INVALID_INPUT
        [diag] = outcome.diagnostics_report().fatal
        assert "field:topology[2].admittance" in diag.components


class TestOutcomeValidation:
    def test_rejected_status_requires_matching_diagnostics(self):
        outcome = execute_scenario(spec_for(islanded_text()))
        payload = outcome.to_dict()
        # rewriting the status without the diagnostics to back it up
        # must be caught at the deserialization boundary.
        payload["status"] = INVALID_INPUT
        with pytest.raises(ValueError):
            ScenarioOutcome.from_dict(payload)
        payload["status"] = DEGENERATE_CASE
        payload["diagnostics"] = None
        with pytest.raises(ValueError):
            ScenarioOutcome.from_dict(payload)


class TestCachedRejections:
    def test_stale_rejection_is_not_served(self):
        # a cached degenerate verdict whose case has since been repaired
        # must fail re-verification (the engine then recomputes).
        stale = execute_scenario(spec_for(islanded_text()))
        verify_cached_outcome(stale, spec_for(islanded_text()))
        with pytest.raises(ValueError):
            verify_cached_outcome(stale, spec_for(clean_text()))

    def test_parse_failures_are_never_cached(self, tmp_path):
        # an unparsable case has no fingerprint, so its rejection cannot
        # be checkpointed; every sweep recomputes it.
        config = SweepConfig(workers=1,
                             cache_dir=str(tmp_path / "cache"),
                             use_cache=True)
        spec = spec_for("garbage", label="bad")
        for _ in range(2):
            trace = SweepEngine(config).run([spec])
            outcome = trace.outcomes[0]
            assert outcome.status == INVALID_INPUT
            assert not outcome.cache_hit
        assert ResultCache(str(tmp_path / "cache")).clear() == 0

    def test_fault_corrupted_spec_does_not_poison_cache(self, tmp_path):
        # CORRUPT_CASE swaps the worker's case text for garbage on the
        # first attempt: the resulting invalid_input rejection belongs
        # to the *mutated* spec and must not be checkpointed under the
        # original fingerprint.
        spec = ScenarioSpec.build("5bus-study1", analyzer="fast",
                                  target=1, state_samples=4,
                                  label="cell-0")
        plan = FaultPlan.single(tmp_path / "plan", "cell-0",
                                Fault(CORRUPT_CASE, times=1))
        config = SweepConfig(workers=1,
                             cache_dir=str(tmp_path / "cache"),
                             use_cache=True)
        faulted = SweepEngine(config, task=plan.task()).run([spec])
        assert faulted.outcomes[0].status == INVALID_INPUT
        # the fault is exhausted; a fresh sweep must recompute the real
        # verdict, not serve the poisoned rejection from cache.
        clean = SweepEngine(config, task=plan.task()).run([spec])
        assert clean.outcomes[0].status == OK
        assert not clean.outcomes[0].cache_hit


class TestParseFailureReport:
    def test_plain_exception_has_no_component(self):
        report = parse_failure_report("case", ValueError("boom"))
        [diag] = report.fatal
        assert diag.code == "parse.malformed"
        assert diag.components == ()
        assert isinstance(report, ValidationReport)
