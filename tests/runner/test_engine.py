"""Tests for the sweep engine: caching, parallelism, failure handling."""

import os
import time
from pathlib import Path

from repro.runner import (
    ResultCache,
    ScenarioOutcome,
    ScenarioSpec,
    SweepConfig,
    SweepEngine,
    execute_scenario,
)
from repro.runner.trace import CRASHED, ERROR, OK, TIMEOUT


def _fast_specs():
    """Two cheap fast-analyzer scenarios."""
    return [
        ScenarioSpec.build("5bus-study1", analyzer="fast", target=1,
                           max_candidates=10, state_samples=4),
        ScenarioSpec.build("5bus-study2", analyzer="fast", target=1,
                           max_candidates=10, state_samples=4),
    ]


def _engine(tmp_path, **overrides):
    config = SweepConfig(**{"workers": 1,
                            "cache_dir": str(tmp_path / "cache"),
                            **overrides})
    return SweepEngine(config)


# -- injectable worker tasks (module level: picklable) ------------------

def _stub_outcome(payload, **fields):
    spec = ScenarioSpec.from_dict(payload["spec"])
    outcome = ScenarioOutcome(spec=spec,
                              fingerprint=payload["fingerprint"],
                              satisfiable=True, worker_pid=os.getpid(),
                              **fields)
    return outcome.to_dict()


def _crash_once(payload):
    """Kill the worker on the first attempt per scenario, then succeed."""
    marker = Path(os.environ["REPRO_TEST_MARKER_DIR"]) \
        / payload["fingerprint"]
    if not marker.exists():
        marker.write_text("seen")
        os._exit(1)
    return _stub_outcome(payload)


def _always_crash(payload):
    os._exit(1)


def _study2_crashes(payload):
    """Crash 5bus-study2's worker; the other unit is slow but fine."""
    if payload["spec"]["case"].endswith("study2"):
        os._exit(1)
    time.sleep(1.0)
    return _stub_outcome(payload)


def _sleep_forever(payload):
    time.sleep(2.0)
    return _stub_outcome(payload)


def _hang_if_labelled(payload):
    """Hang long (3s) only for specs whose label starts with 'hang'."""
    if payload["spec"]["label"].startswith("hang"):
        time.sleep(3.0)
    return _stub_outcome(payload)


# -- execute_scenario ---------------------------------------------------

class TestExecuteScenario:
    def test_smt_outcome_carries_trace(self):
        spec = ScenarioSpec.build("5bus-study1", analyzer="smt",
                                  target=1, max_candidates=20)
        outcome = execute_scenario(spec, "fp")
        assert outcome.status == OK
        assert outcome.satisfiable is True
        assert outcome.solver_calls > 0
        assert outcome.candidates_examined >= 1
        assert outcome.trace["smt"]["decisions"] >= 0
        assert "simplex_pivots" in outcome.trace["smt"]
        assert outcome.trace["opf"]["solves"] > 0
        assert outcome.worker_pid == os.getpid()
        assert outcome.task_seconds >= outcome.analysis_seconds

    def test_fast_outcome_carries_trace(self):
        spec = _fast_specs()[0]
        outcome = execute_scenario(spec, "fp")
        assert outcome.status == OK
        assert outcome.satisfiable is not None
        assert outcome.trace["opf"]["solves"] > 0

    def test_bad_case_is_an_error(self):
        spec = ScenarioSpec.build("no-such-case")
        outcome = execute_scenario(spec, "fp")
        assert outcome.status == ERROR
        assert "no-such-case" in outcome.error


# -- engine: serial + cache ---------------------------------------------

class TestSerialAndCache:
    def test_serial_run(self, tmp_path):
        trace = _engine(tmp_path).run(_fast_specs())
        assert trace.mode == "serial"
        assert [o.status for o in trace.outcomes] == [OK, OK]
        assert trace.cache_hits == 0
        assert not trace.failures

    def test_second_run_served_from_cache(self, tmp_path):
        engine = _engine(tmp_path)
        specs = _fast_specs()
        first = engine.run(specs)
        second = engine.run(specs)
        assert second.cache_hits == len(specs)
        for before, after in zip(first.outcomes, second.outcomes):
            assert after.cache_hit
            assert after.satisfiable == before.satisfiable
            assert after.base_cost == before.base_cost
            assert after.trace == before.trace

    def test_use_cache_false_always_executes(self, tmp_path):
        engine = _engine(tmp_path, use_cache=False)
        specs = _fast_specs()
        engine.run(specs)
        assert not (tmp_path / "cache").exists()
        assert engine.run(specs).cache_hits == 0

    def test_failures_are_not_cached(self, tmp_path):
        engine = _engine(tmp_path)
        specs = [ScenarioSpec.build("no-such-case")]
        first = engine.run(specs)
        assert first.outcomes[0].status == ERROR
        second = engine.run(specs)
        assert second.cache_hits == 0
        assert second.outcomes[0].status == ERROR

    def test_trace_json_roundtrip(self, tmp_path):
        trace = _engine(tmp_path).run(_fast_specs())
        path = trace.write(tmp_path / "out" / "trace.json")
        import json
        payload = json.loads(path.read_text())
        assert payload["totals"]["scenarios"] == 2
        assert payload["totals"]["opf_solves"] > 0
        assert payload["scenarios"][0]["trace"]["opf"]["solves"] > 0


# -- engine: parallel ---------------------------------------------------

class TestParallel:
    def test_matches_serial_results(self, tmp_path):
        specs = _fast_specs()
        serial = _engine(tmp_path / "a").run(specs)
        parallel = _engine(tmp_path / "b", workers=2).run(specs)
        assert parallel.mode == "parallel"
        assert parallel.workers == 2
        for s, p in zip(serial.outcomes, parallel.outcomes):
            assert p.status == OK
            assert p.satisfiable == s.satisfiable
            assert p.base_cost == s.base_cost
            assert p.achieved_increase_percent \
                == s.achieved_increase_percent

    def test_runs_in_worker_processes(self, tmp_path):
        trace = _engine(tmp_path, workers=2).run(_fast_specs())
        pids = {o.worker_pid for o in trace.outcomes}
        assert os.getpid() not in pids

    def test_parallel_results_are_cached(self, tmp_path):
        engine = _engine(tmp_path, workers=2)
        specs = _fast_specs()
        engine.run(specs)
        assert engine.run(specs).cache_hits == len(specs)

    def test_crashed_worker_is_retried(self, tmp_path, monkeypatch):
        markers = tmp_path / "markers"
        markers.mkdir()
        monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(markers))
        engine = SweepEngine(
            SweepConfig(workers=2, retries=1, use_cache=False),
            task=_crash_once)
        trace = engine.run(_fast_specs())
        assert [o.status for o in trace.outcomes] == [OK, OK]
        assert all(o.attempts == 2 for o in trace.outcomes)

    def test_collateral_pool_breakage_is_not_a_conviction(self,
                                                          tmp_path):
        # One crashing worker breaks the shared pool and fails every
        # in-flight future; with the retry budget exhausted (retries=0)
        # the innocent unit — mid-sleep when the pool broke — must be
        # cleared by its isolated dispatch, not recorded as crashed.
        engine = SweepEngine(
            SweepConfig(workers=2, retries=0, use_cache=False),
            task=_study2_crashes)
        trace = engine.run(_fast_specs())
        by_case = {o.spec.label.split("/")[0]: o
                   for o in trace.outcomes}
        assert by_case["5bus-study1"].status == OK
        assert by_case["5bus-study2"].status == CRASHED

    def test_crash_after_retries_is_recorded(self, tmp_path):
        engine = SweepEngine(
            SweepConfig(workers=2, retries=0, use_cache=False),
            task=_always_crash)
        trace = engine.run(_fast_specs())
        assert [o.status for o in trace.outcomes] == [CRASHED, CRASHED]
        assert trace.failures == trace.outcomes

    def test_task_timeout(self, tmp_path):
        engine = SweepEngine(
            SweepConfig(workers=2, task_timeout=0.2, use_cache=False),
            task=_sleep_forever)
        trace = engine.run(_fast_specs())
        assert all(o.status == TIMEOUT for o in trace.outcomes)
        assert all("task budget" in o.error for o in trace.outcomes)

    def test_timeout_does_not_starve_queued_tasks(self, tmp_path):
        # Regression: future.cancel() cannot stop an already-running
        # worker, so after a timeout the queued tasks behind the hung
        # slots used to inherit dead workers and time out in turn.  The
        # engine must migrate them to a fresh pool instead.
        specs = [ScenarioSpec.build("5bus-study1", analyzer="fast",
                                    label=label)
                 for label in ("hang-0", "hang-1", "fast-0", "fast-1")]
        engine = SweepEngine(
            SweepConfig(workers=2, task_timeout=0.2, use_cache=False),
            task=_hang_if_labelled)
        started = time.perf_counter()
        trace = engine.run(specs)
        wall = time.perf_counter() - started
        statuses = {o.spec.label: o.status for o in trace.outcomes}
        assert statuses == {"hang-0": TIMEOUT, "hang-1": TIMEOUT,
                            "fast-0": OK, "fast-1": OK}
        # Rescheduling off a poisoned pool is not a crash retry.
        assert all(o.attempts == 1 for o in trace.outcomes)
        # The sweep never waited out the 3s hangs.
        assert wall < 3.0

    def test_falls_back_to_serial_without_process_pools(
            self, tmp_path, monkeypatch):
        import repro.runner.engine as engine_mod

        def no_pools(*args, **kwargs):
            raise OSError("no process pools in this sandbox")

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", no_pools)
        trace = _engine(tmp_path, workers=4).run(_fast_specs())
        assert trace.mode == "serial"
        assert trace.workers == 1
        assert [o.status for o in trace.outcomes] == [OK, OK]
