"""Tests for the on-disk result cache."""

import json

from repro.runner import ResultCache, ScenarioSpec
from repro.runner.cache import CACHE_FORMAT_VERSION
from repro.runner.trace import ScenarioOutcome


def _outcome(fingerprint):
    spec = ScenarioSpec.build("5bus-study1", target=3)
    return ScenarioOutcome(spec=spec, fingerprint=fingerprint,
                           satisfiable=True, base_cost="17479/10",
                           solver_calls=7,
                           trace={"smt": {"decisions": 4}})


class TestResultCache:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("ab" * 32) is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = "ab" * 32
        stored = _outcome(fingerprint)
        cache.put(fingerprint, stored.to_dict())
        loaded = ScenarioOutcome.from_dict(cache.get(fingerprint))
        assert loaded == stored

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = "ab" * 32
        cache.put(fingerprint, _outcome(fingerprint).to_dict())
        path = tmp_path / "cache" / "results" / "ab" \
            / f"{fingerprint}.json"
        assert path.is_file()
        # the envelope on disk is plain JSON with the expected metadata
        envelope = json.loads(path.read_text())
        assert envelope["version"] == CACHE_FORMAT_VERSION
        assert envelope["fingerprint"] == fingerprint

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = "cd" * 32
        cache.put(fingerprint, _outcome(fingerprint).to_dict())
        path = cache._path(fingerprint)
        path.write_text("{ not json")
        assert cache.get(fingerprint) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = "ef" * 32
        cache.put(fingerprint, _outcome(fingerprint).to_dict())
        path = cache._path(fingerprint)
        envelope = json.loads(path.read_text())
        envelope["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(envelope))
        assert cache.get(fingerprint) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        # e.g. a file copied/renamed by hand: never served
        cache = ResultCache(tmp_path / "cache")
        a, b = "aa" * 32, "bb" * 32
        cache.put(a, _outcome(a).to_dict())
        cache._path(b).parent.mkdir(parents=True, exist_ok=True)
        cache._path(b).write_text(cache._path(a).read_text())
        assert cache.get(b) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for fingerprint in ("11" * 32, "22" * 32):
            cache.put(fingerprint, _outcome(fingerprint).to_dict())
        assert cache.clear() == 2
        assert cache.get("11" * 32) is None
        assert cache.clear() == 0


class TestPrune:
    def test_empty_cache(self, tmp_path):
        report = ResultCache(tmp_path / "cache").prune()
        assert report == {"scanned": 0, "removed": 0, "kept": 0,
                          "reclaimed_bytes": 0}

    def test_keeps_live_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for fingerprint in ("11" * 32, "22" * 32):
            cache.put(fingerprint, _outcome(fingerprint).to_dict())
        report = cache.prune()
        assert report["scanned"] == 2
        assert report["kept"] == 2
        assert report["removed"] == 0
        assert report["reclaimed_bytes"] == 0
        assert cache.get("11" * 32) is not None

    def test_removes_stale_format_version(self, tmp_path):
        # A planted previous-format entry (version N-1 envelopes had no
        # code/encoding fingerprints at all) is reclaimed; the live
        # entry survives and keeps serving.
        cache = ResultCache(tmp_path / "cache")
        live, stale = "11" * 32, "44" * 32
        cache.put(live, _outcome(live).to_dict())
        path = cache._path(stale)
        path.parent.mkdir(parents=True, exist_ok=True)
        planted = {"version": CACHE_FORMAT_VERSION - 1,
                   "fingerprint": stale,
                   "outcome": _outcome(stale).to_dict()}
        path.write_text(json.dumps(planted))
        size = path.stat().st_size

        report = cache.prune()
        assert report["scanned"] == 2
        assert report["kept"] == 1
        assert report["removed"] == 1
        assert report["reclaimed_bytes"] == size
        assert not path.exists()
        assert cache.get(live) is not None

    def test_removes_corrupt_and_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        results = tmp_path / "cache" / "results" / "zz"
        results.mkdir(parents=True)
        (results / "corrupt.json").write_text("{ not json")
        (results / "foreign.json").write_text(json.dumps(["not", "an",
                                                          "envelope"]))
        report = cache.prune()
        assert report["removed"] == 2
        assert report["reclaimed_bytes"] > 0
        assert list(results.glob("*.json")) == []

    def test_removes_wrong_code_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = "55" * 32
        cache.put(fingerprint, _outcome(fingerprint).to_dict())
        path = cache._path(fingerprint)
        envelope = json.loads(path.read_text())
        envelope["code"] = "0" * 64      # a different install wrote it
        path.write_text(json.dumps(envelope))
        report = cache.prune()
        assert report["removed"] == 1
        assert not path.exists()
