"""End-to-end plumbing of the ``numerical_unstable`` degradation status:
worker outcome, structural validation, cache round-trip with load-time
re-verification, and the CLI exit code."""

import pytest

from repro.cli import EXIT_NUMERICAL_UNSTABLE, main
from repro.grid.caseio import write_case
from repro.grid.cases import get_case
from repro.runner import (
    ScenarioOutcome,
    ScenarioSpec,
    SweepConfig,
    SweepEngine,
    execute_scenario,
)
from repro.runner.engine import verify_cached_outcome
from repro.runner.trace import NUMERICAL_UNSTABLE


_LINE_ROW = "3 2 3 5.05 0.05 1 1 1 1 1"


def _unstable_case_text():
    """5bus-study1 with one admittance scaled to a ~5e12 spread."""
    text = write_case(get_case("5bus-study1"))
    assert _LINE_ROW in text
    return text.replace(_LINE_ROW,
                        _LINE_ROW.replace("5.05", repr(5.05e-12)))


def _unstable_spec(label="unstable"):
    return ScenarioSpec.build("5bus-unstable", analyzer="fast",
                              case_text=_unstable_case_text(), target=1,
                              state_samples=2, label=label)


class TestWorkerOutcome:
    def test_execute_scenario_degrades_not_crashes(self):
        outcome = execute_scenario(_unstable_spec(), "fp")
        assert outcome.status == NUMERICAL_UNSTABLE
        assert outcome.satisfiable is not True
        assert "admittance spread" in outcome.error

    def test_structural_validation_requires_a_reason(self):
        payload = execute_scenario(_unstable_spec(), "fp").to_dict()
        ScenarioOutcome.from_dict(payload)  # intact: accepted
        payload["error"] = None
        with pytest.raises(ValueError):
            ScenarioOutcome.from_dict(payload)


class TestCacheRoundTrip:
    def _engine(self, tmp_path):
        return SweepEngine(SweepConfig(
            workers=1, cache_dir=str(tmp_path / "cache")))

    def test_outcome_is_cacheable_and_served(self, tmp_path):
        engine = self._engine(tmp_path)
        specs = [_unstable_spec()]
        first = engine.run(specs)
        assert first.outcomes[0].status == NUMERICAL_UNSTABLE
        second = engine.run(specs)
        assert second.cache_hits == 1
        served = second.outcomes[0]
        assert served.cache_hit
        assert served.status == NUMERICAL_UNSTABLE
        assert "admittance spread" in served.error

    def test_verify_accepts_honest_cached_refusal(self):
        spec = _unstable_spec()
        outcome = execute_scenario(spec, "fp")
        verify_cached_outcome(outcome, spec)  # must not raise

    def test_verify_rejects_refusal_claiming_a_verdict(self):
        spec = _unstable_spec()
        outcome = execute_scenario(spec, "fp")
        outcome.satisfiable = True
        with pytest.raises(ValueError):
            verify_cached_outcome(outcome, spec)


class TestCliExitCode:
    def test_analyze_exits_6_and_reports_reason(self, tmp_path, capsys):
        case_file = tmp_path / "unstable.case"
        case_file.write_text(_unstable_case_text())
        code = main(["analyze", "--input", str(case_file), "--fast"])
        assert code == EXIT_NUMERICAL_UNSTABLE
        out = capsys.readouterr().out
        assert "numerically unstable (verdict withheld)" in out
        assert "admittance spread" in out

    def test_healthy_case_unaffected(self, capsys):
        assert main(["analyze", "--case", "5bus-study1", "--fast"]) == 0
