"""Tests for scenario specifications and fingerprinting."""

from fractions import Fraction

import pytest

from repro.exceptions import ModelError
from repro.grid import write_case
from repro.grid.cases import get_case
from repro.runner import ScenarioSpec, code_fingerprint


class TestBuild:
    def test_target_normalized_to_fraction_string(self):
        spec = ScenarioSpec.build("5bus-study1", target=2.5)
        assert spec.target == "5/2"
        assert spec.target_fraction() == Fraction(5, 2)

    def test_no_target(self):
        spec = ScenarioSpec.build("5bus-study1")
        assert spec.target is None
        assert spec.target_fraction() is None

    def test_label_generated(self):
        spec = ScenarioSpec.build("5bus-study1", attacker_seed=2014,
                                  target=3, with_state_infection=True)
        assert spec.label == "5bus-study1/s2014/t3/states"

    def test_rejects_unknown_analyzer(self):
        with pytest.raises(ModelError):
            ScenarioSpec.build("5bus-study1", analyzer="quantum")

    def test_round_trips_through_dict(self):
        spec = ScenarioSpec.build("ieee14", attacker_seed=7, target=2,
                                  with_state_infection=True)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestResolution:
    def test_bundled_case(self):
        spec = ScenarioSpec.build("5bus-study1")
        assert spec.resolve_case().name == "5bus-study1"

    def test_inline_case_text(self):
        text = write_case(get_case("5bus-study1"))
        spec = ScenarioSpec.build("custom", case_text=text)
        case = spec.resolve_case()
        assert case.num_buses == 5 and case.name == "custom"

    def test_attacker_seed_applied(self):
        spec = ScenarioSpec.build("ieee14", attacker_seed=2014)
        case = spec.resolve_case()
        assert case.name == "ieee14-scenario2014"

    def test_auto_analyzer_by_size(self):
        small = ScenarioSpec.build("5bus-study1")
        large = ScenarioSpec.build("ieee57")
        assert small.resolved_analyzer(small.resolve_case()) == "smt"
        assert large.resolved_analyzer(large.resolve_case()) == "fast"

    def test_explicit_analyzer_wins(self):
        spec = ScenarioSpec.build("ieee57", analyzer="smt")
        assert spec.resolved_analyzer(spec.resolve_case()) == "smt"


class TestFingerprint:
    def test_deterministic(self):
        a = ScenarioSpec.build("5bus-study1", target=3)
        b = ScenarioSpec.build("5bus-study1", target=3)
        assert a.fingerprint() == b.fingerprint()

    def test_query_changes_fingerprint(self):
        base = ScenarioSpec.build("5bus-study1", target=3)
        assert base.fingerprint() != \
            ScenarioSpec.build("5bus-study1", target=4).fingerprint()
        assert base.fingerprint() != ScenarioSpec.build(
            "5bus-study1", target=3,
            with_state_infection=True).fingerprint()

    def test_case_content_changes_fingerprint(self):
        a = ScenarioSpec.build("5bus-study1")
        b = ScenarioSpec.build("5bus-study2")
        assert a.fingerprint() != b.fingerprint()

    def test_attacker_seed_changes_fingerprint(self):
        a = ScenarioSpec.build("ieee14", attacker_seed=2014)
        b = ScenarioSpec.build("ieee14", attacker_seed=2015)
        assert a.fingerprint() != b.fingerprint()

    def test_label_does_not_change_fingerprint(self):
        a = ScenarioSpec.build("5bus-study1", target=3, label="x")
        b = ScenarioSpec.build("5bus-study1", target=3, label="y")
        assert a.fingerprint() == b.fingerprint()

    def test_covers_code_version(self):
        # The fingerprint must be derived from the package sources, so
        # code changes invalidate cached results.
        assert len(code_fingerprint()) == 16
        spec = ScenarioSpec.build("5bus-study1")
        assert spec.fingerprint()  # cheap sanity: hashing succeeds
