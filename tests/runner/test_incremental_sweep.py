"""Incremental (warm) scenario grouping in the sweep engine.

A Fig. 4-style threshold sweep re-analyzes one case at many targets; the
engine must batch those scenarios onto a warm analyzer so the attack
encoding is built exactly once per worker, while scenarios with
different encodings (other cases, state infection, injected test tasks)
keep the legacy one-scenario-per-task path.
"""

from repro.grid.caseio import write_case
from repro.grid.cases import get_case
from repro.runner import ScenarioSpec, SweepConfig, SweepEngine
from repro.runner.engine import (
    _worker_entry,
    execute_scenario,
    execute_scenario_group,
)
from repro.runner.trace import ERROR, OK, UNKNOWN

TARGETS = (1, 2, 3, 4, 5, 6)


def _threshold_specs(targets=TARGETS, case="5bus-study1"):
    return [ScenarioSpec.build(case, analyzer="smt", target=t,
                               label=f"{case}/t{t}") for t in targets]


class TestEncodingGroup:
    def test_targets_share_a_group(self):
        a, b = _threshold_specs(targets=(1, 6))
        assert a.encoding_group() == b.encoding_group()

    def test_cases_and_infection_split_groups(self):
        base = ScenarioSpec.build("5bus-study1", analyzer="smt", target=1)
        other_case = ScenarioSpec.build("5bus-study2", analyzer="smt",
                                        target=1)
        with_states = ScenarioSpec.build("5bus-study1", analyzer="smt",
                                         target=1,
                                         with_state_infection=True)
        assert base.encoding_group() != other_case.encoding_group()
        assert base.encoding_group() != with_states.encoding_group()


class TestUnitPlanning:
    def test_one_worker_one_unit_per_group(self):
        engine = SweepEngine(SweepConfig(workers=1))
        units = engine._plan_units(_threshold_specs(), range(len(TARGETS)))
        assert units == [[0, 1, 2, 3, 4, 5]]

    def test_groups_split_to_keep_workers_busy(self):
        engine = SweepEngine(SweepConfig(workers=2))
        units = engine._plan_units(_threshold_specs(), range(len(TARGETS)))
        assert units == [[0, 1, 2], [3, 4, 5]]

    def test_mixed_cases_group_separately(self):
        specs = _threshold_specs(targets=(1, 2)) + \
            _threshold_specs(targets=(1, 2), case="5bus-study2")
        engine = SweepEngine(SweepConfig(workers=1))
        assert engine._plan_units(specs, range(4)) == [[0, 1], [2, 3]]

    def test_injected_task_forces_singletons(self):
        engine = SweepEngine(SweepConfig(workers=1), task=lambda p: p)
        units = engine._plan_units(_threshold_specs(), range(len(TARGETS)))
        assert units == [[i] for i in range(len(TARGETS))]

    def test_default_task_is_groupable(self):
        assert SweepEngine(SweepConfig())._task is _worker_entry


class TestWarmSweep:
    def test_threshold_sweep_builds_one_encoding(self):
        """Acceptance: a 6-scenario threshold sweep over one case pays
        for exactly one AttackModelEncoding construction."""
        specs = _threshold_specs()
        trace = SweepEngine(SweepConfig(
            workers=1, use_cache=False)).run(specs)
        assert [o.status for o in trace.outcomes] == [OK] * len(specs)
        totals = trace.to_dict()["totals"]
        assert totals["encodings_built"] == 1
        assert totals["encode_seconds"] > 0
        sessions = [o.trace["session"] for o in trace.outcomes]
        assert [s["warm"] for s in sessions] == \
            [False] + [True] * (len(specs) - 1)

    def test_warm_verdicts_match_cold_execution(self):
        specs = _threshold_specs()
        warm = SweepEngine(SweepConfig(
            workers=1, use_cache=False)).run(specs)
        for spec, outcome in zip(specs, warm.outcomes):
            cold = execute_scenario(spec, "fp")
            assert outcome.satisfiable == cold.satisfiable
            assert outcome.status == cold.status
            assert outcome.base_cost == cold.base_cost
            assert outcome.threshold == cold.threshold

    def test_group_runner_isolates_scenario_failures(self):
        good = _threshold_specs(targets=(1, 5))
        bad = ScenarioSpec.build("broken", analyzer="smt", target=2,
                                 case_text="not a case",
                                 label="broken/t2")
        specs = [good[0], bad, good[1]]
        outcomes = execute_scenario_group(specs, ["a", "b", "c"])
        assert [o.fingerprint for o in outcomes] == ["a", "b", "c"]
        assert outcomes[0].status == OK
        assert outcomes[1].status == "invalid_input"
        assert outcomes[2].status == OK

    def test_group_budget_is_per_scenario(self):
        specs = _threshold_specs(targets=(1, 2))
        outcomes = execute_scenario_group(
            specs, ["a", "b"], budget_limits={"wall_seconds": 1e-9})
        assert [o.status for o in outcomes] == [UNKNOWN, UNKNOWN]

    def test_group_results_are_cached_per_scenario(self, tmp_path):
        specs = _threshold_specs()
        config = SweepConfig(workers=1,
                             cache_dir=str(tmp_path / "cache"))
        first = SweepEngine(config).run(specs)
        assert all(not o.cache_hit for o in first.outcomes)
        second = SweepEngine(config).run(specs)
        assert all(o.cache_hit for o in second.outcomes)
        for before, after in zip(first.outcomes, second.outcomes):
            assert after.satisfiable == before.satisfiable
            assert after.trace == before.trace

    def test_parallel_grouped_sweep_matches_serial(self):
        specs = _threshold_specs(targets=(1, 2, 5, 6))
        serial = SweepEngine(SweepConfig(
            workers=1, use_cache=False)).run(specs)
        parallel = SweepEngine(SweepConfig(
            workers=2, use_cache=False)).run(specs)
        assert [o.satisfiable for o in parallel.outcomes] == \
            [o.satisfiable for o in serial.outcomes]
        assert [o.status for o in parallel.outcomes] == \
            [OK] * len(specs)
        # one warm unit per worker: one encoding each
        totals = parallel.to_dict()["totals"]
        if parallel.mode == "parallel":
            assert totals["encodings_built"] == 2


class TestGroupErrorPropagation:
    def test_unit_payload_length_mismatch_is_error(self):
        engine = SweepEngine(SweepConfig(workers=1))
        specs = _threshold_specs(targets=(1, 2))
        parsed = engine._parse_unit_payloads(
            [0, 1], [{"spec": specs[0].to_dict()}], specs, ["a", "b"])
        assert [o.status for o in parsed] == [ERROR, ERROR]
        assert "2 scenarios" in parsed[0].error
