"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.grid import write_case
from repro.grid.cases import get_case


class TestCases:
    def test_lists_all_systems(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "5bus-study1" in out and "ieee118" in out


class TestOpf:
    def test_bundled_case(self, capsys):
        assert main(["opf", "--case", "5bus-study1"]) == 0
        out = capsys.readouterr().out
        assert "optimal cost: 1474.68" in out
        assert "generator at bus 1" in out

    def test_missing_case_argument(self):
        with pytest.raises(SystemExit):
            main(["opf"])


class TestAnalyze:
    def test_reproduces_case_study_1(self, capsys):
        assert main(["analyze", "--case", "5bus-study1"]) == 0
        out = capsys.readouterr().out
        assert "verdict                  : sat" in out
        assert "exclusion attack on line(s) [6]" in out

    def test_unsat_exit_code(self, capsys):
        assert main(["analyze", "--case", "5bus-study1",
                     "--target", "20"]) == 1
        assert "unsat" in capsys.readouterr().out

    def test_fast_analyzer(self, capsys):
        assert main(["analyze", "--case", "5bus-study1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "exclusion attack on line(s) [6]" in out

    def test_input_file_and_output_file(self, tmp_path, capsys):
        case_file = tmp_path / "case.txt"
        case_file.write_text(write_case(get_case("5bus-study1")))
        report_file = tmp_path / "report.txt"
        code = main(["analyze", "--input", str(case_file),
                     "--output", str(report_file)])
        assert code == 0
        assert "report written" in capsys.readouterr().out
        assert "sat" in report_file.read_text()

    def test_with_states_flag(self, capsys):
        code = main(["analyze", "--case", "5bus-study2",
                     "--with-states", "--target", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UFDI attack on state(s) [3]" in out


class TestSweep:
    def _run(self, tmp_path, extra=(), capsys=None):
        args = ["sweep", "--cases", "5bus-study1,5bus-study2",
                "--analyzer", "fast", "--targets", "1",
                "--state-samples", "4", "--serial",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace", str(tmp_path / "trace.json")]
        return main(args + list(extra))

    def test_sweep_runs_and_writes_trace(self, tmp_path, capsys):
        import json
        assert self._run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "2 scenarios" in out
        assert "trace written" in out
        payload = json.loads((tmp_path / "trace.json").read_text())
        assert payload["totals"]["scenarios"] == 2
        assert payload["totals"]["failures"] == 0
        assert payload["totals"]["opf_solves"] > 0
        scenario = payload["scenarios"][0]
        assert "smt" in scenario["trace"] and "opf" in scenario["trace"]

    def test_second_sweep_served_from_cache(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        capsys.readouterr()
        assert self._run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "2/2 hits" in out

    def test_clear_cache(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        capsys.readouterr()
        assert self._run(tmp_path, extra=["--clear-cache"]) == 0
        out = capsys.readouterr().out
        assert "cleared 2 cached result(s)" in out
        assert "0/2 hits" in out

    def test_failure_exit_code(self, tmp_path, capsys):
        code = main(["sweep", "--cases", "no-such-case", "--serial",
                     "--no-cache", "--trace", ""])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_smt_sweep_reports_solver_calls(self, tmp_path, capsys):
        import json
        code = main(["sweep", "--cases", "5bus-study1",
                     "--analyzer", "smt", "--targets", "1", "--serial",
                     "--no-cache",
                     "--trace", str(tmp_path / "trace.json")])
        assert code == 0
        payload = json.loads((tmp_path / "trace.json").read_text())
        assert payload["totals"]["solver_calls"] > 0
        smt = payload["scenarios"][0]["trace"]["smt"]
        assert smt["decisions"] >= 0 and "simplex_pivots" in smt
