"""The lease queue's state machine under a controllable clock."""

import pytest

from repro.fabric import (
    COMMITTED,
    FAILED,
    Journal,
    LeaseQueue,
    PENDING,
    read_events,
)


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def queue_for(units=((0, 1), (2,)), **kwargs):
    clock = Clock()
    kwargs.setdefault("lease_ttl", 10.0)
    kwargs.setdefault("steal_after", 30.0)
    kwargs.setdefault("retry_budget", 2)
    kwargs.setdefault("backoff_base", 1.0)
    kwargs.setdefault("backoff_cap", 8.0)
    return LeaseQueue(units, clock=clock, **kwargs), clock


def outcomes_for(queue, unit_id):
    return [{"status": "ok", "cell": idx}
            for idx in queue.units[unit_id].indices]


def test_lease_then_commit():
    queue, _ = queue_for()
    grant = queue.lease("w1")
    assert grant.unit_id == 0
    assert grant.indices == [0, 1]
    assert grant.attempt == 1
    assert not grant.speculative
    assert queue.commit("w1", 0, outcomes_for(queue, 0)) == "committed"
    assert queue.units[0].state == COMMITTED
    assert not queue.done
    queue.lease("w1")
    queue.commit("w1", 1, outcomes_for(queue, 1))
    assert queue.done
    assert set(queue.committed_outcomes()) == {0, 1, 2}


def test_each_worker_gets_a_distinct_unit():
    queue, _ = queue_for()
    assert queue.lease("w1").unit_id == 0
    assert queue.lease("w2").unit_id == 1
    assert queue.lease("w3") is None    # nothing stealable yet


def test_expiry_redispatches_with_backoff():
    queue, clock = queue_for()
    queue.lease("w1")
    clock.advance(11.0)                  # past the 10s ttl
    assert queue.expire_overdue() == [0]
    unit = queue.units[0]
    assert unit.state == PENDING
    assert unit.expiries == 1
    # Backoff: the unit is not leasable until base * 2**0 elapses...
    assert queue.lease("w1").unit_id == 1
    clock.advance(1.01)
    grant = queue.lease("w1")
    assert grant.unit_id == 0
    assert grant.attempt == 2


def test_backoff_grows_exponentially_then_caps():
    queue, clock = queue_for(units=((0,),), retry_budget=10,
                             backoff_base=1.0, backoff_cap=4.0)
    waits = []
    for _ in range(5):
        clock.advance(10.0)              # past any pending backoff
        assert queue.lease("w1") is not None
        clock.advance(10.01)             # past the lease ttl
        queue.expire_overdue()
        waits.append(queue.units[0].backoff_until - clock.now)
    assert waits == [1.0, 2.0, 4.0, 4.0, 4.0]
    # honoured: immediately after an expiry the unit is not leasable
    assert queue.lease("w1") is None
    clock.advance(4.01)
    assert queue.lease("w1") is not None


def test_heartbeat_extends_the_deadline():
    queue, clock = queue_for()
    queue.lease("w1")
    clock.advance(8.0)
    assert queue.heartbeat("w1", 0) is True
    clock.advance(8.0)                   # 16s total, but extended at 8
    assert queue.expire_overdue() == []
    assert queue.units[0].state != PENDING
    assert queue.heartbeat("w2", 0) is False     # not w2's lease
    assert queue.heartbeat("w1", 1) is False     # never leased


def test_retry_budget_exhaustion_fails_the_unit():
    queue, clock = queue_for(units=((0,),), retry_budget=2,
                             backoff_cap=0.0)
    for expiry in range(3):
        assert queue.lease("w1") is not None
        clock.advance(10.01)
        queue.expire_overdue()
    unit = queue.units[0]
    assert unit.state == FAILED
    assert "retry budget exhausted" in unit.failure
    assert queue.lease("w1") is None
    assert queue.done                    # failed counts as resolved
    assert queue.failed_units() == [unit]


def test_commit_revives_a_failed_unit():
    # Giving up was a scheduling decision; a late deterministic answer
    # is still the answer.
    queue, clock = queue_for(units=((0,),), retry_budget=0,
                             backoff_cap=0.0)
    queue.lease("w1")
    clock.advance(10.01)
    queue.expire_overdue()
    assert queue.units[0].state == FAILED
    assert queue.commit("w1", 0, outcomes_for(queue, 0)) == "committed"
    assert queue.units[0].state == COMMITTED
    assert queue.failed_units() == []


def test_steal_only_after_threshold_and_never_self():
    # Long ttl: the leases stay alive on their own; only the steal
    # threshold decides when speculative copies appear.
    queue, clock = queue_for(units=((0,), (1,)), steal_after=30.0,
                             lease_ttl=1000.0)
    queue.lease("w1")
    queue.lease("w2")
    clock.advance(29.0)
    assert queue.lease("w3") is None     # under the steal threshold
    clock.advance(1.01)
    grant = queue.lease("w1")            # steals 1, never its own 0
    assert grant is not None and grant.speculative
    assert grant.unit_id == 1
    grant = queue.lease("w3")
    assert grant is not None and grant.speculative
    assert grant.unit_id == 0
    # ...and never a third copy:
    clock.advance(40.0)
    assert queue.lease("w4") is None


def test_steal_prefers_the_longest_held_unit():
    queue, clock = queue_for(units=((0,), (1,)), steal_after=5.0)
    queue.lease("w1")                    # unit 0 at t0
    clock.advance(2.0)
    queue.lease("w2")                    # unit 1 at t0+2
    clock.advance(4.0)
    queue.heartbeat("w1", 0)
    queue.heartbeat("w2", 1)
    grant = queue.lease("w3")            # both past 5s? only unit 0 is
    assert grant.unit_id == 0
    assert grant.speculative


def test_first_commit_wins_speculative_loses():
    queue, clock = queue_for(units=((0,),), steal_after=5.0)
    queue.lease("w1")
    clock.advance(5.01)
    queue.heartbeat("w1", 0)
    assert queue.lease("w2").speculative
    assert queue.commit("w1", 0, outcomes_for(queue, 0)) == "committed"
    assert queue.commit("w2", 0, outcomes_for(queue, 0)) == "duplicate"
    assert queue.units[0].committed_by == "w1"


def test_surviving_speculative_lease_charges_no_expiry():
    # The primary lapses while the speculative copy is heartbeating:
    # the unit is not lost, so its retry budget is untouched.
    queue, clock = queue_for(units=((0,),), steal_after=5.0,
                             lease_ttl=10.0)
    queue.lease("w1")
    clock.advance(6.0)
    queue.heartbeat("w1", 0)            # w1 deadline now t+16
    queue.lease("w2")                   # speculative, deadline t+16
    clock.advance(8.0)
    queue.heartbeat("w2", 0)            # only w2 keeps beating
    clock.advance(9.0)                  # w1's lease lapses
    queue.expire_overdue()
    unit = queue.units[0]
    assert unit.state != PENDING
    assert unit.expiries == 0
    assert len(unit.leases) == 1
    assert unit.leases[0].worker == "w2"


def test_commit_from_an_expired_lease_is_accepted():
    queue, clock = queue_for(units=((0,),))
    queue.lease("w1")
    clock.advance(10.01)
    queue.expire_overdue()
    assert queue.units[0].state == PENDING
    # The partitioned worker's late answer lands before re-dispatch:
    assert queue.commit("w1", 0, outcomes_for(queue, 0)) == "committed"
    assert queue.lease("w2") is None
    assert queue.done


def test_commit_validation():
    queue, _ = queue_for()
    queue.lease("w1")
    with pytest.raises(KeyError):
        queue.commit("w1", 99, [])
    with pytest.raises(ValueError):
        queue.commit("w1", 0, [{"status": "ok"}])    # 1 for 2 cells


def test_every_transition_is_journaled_before_ack(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(path)
    queue, clock = queue_for(units=((0,), (1,)), steal_after=5.0,
                             retry_budget=0, backoff_cap=0.0,
                             journal=journal)
    queue.lease("w1")
    queue.lease("w2")
    clock.advance(5.01)
    queue.heartbeat("w1", 0)
    queue.lease("w3")                    # speculative copy of unit 0
    clock.advance(5.0)                   # w2's un-heartbeated ttl lapses
    queue.expire_overdue()               # expire + fail unit 1
    queue.commit("w1", 0, outcomes_for(queue, 0))
    queue.commit("w3", 0, outcomes_for(queue, 0))
    journal.close()
    kinds = [e["event"] for e in read_events(path)]
    assert kinds.count("lease") == 2
    assert kinds.count("steal") == 1
    assert "expire" in kinds
    assert "fail" in kinds
    assert kinds.count("commit") == 1
    assert kinds.count("duplicate") == 1
    commit = read_events(path, kinds=("commit",))[0]
    assert commit["outcomes"] == outcomes_for(queue, 0)


def test_stats():
    queue, clock = queue_for()
    queue.lease("w1")
    queue.commit("w1", 0, outcomes_for(queue, 0))
    stats = queue.stats()
    assert stats["units"] == 2
    assert stats["cells"] == 3
    assert stats["committed"] == 1
    assert stats["pending"] == 1
    assert stats["dispatches"] == 1
