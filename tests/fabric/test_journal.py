"""The append-only journal: durability and torn-write tolerance."""

import json

import pytest

from repro.fabric import Journal, read_events


def test_round_trip(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.append({"event": "plan", "cells": 3})
        journal.append({"event": "commit", "unit": 0,
                        "outcomes": [{"status": "ok"}]})
    events = read_events(path)
    assert [e["event"] for e in events] == ["plan", "commit"]
    assert events[1]["outcomes"] == [{"status": "ok"}]


def test_missing_file_reads_empty(tmp_path):
    assert read_events(tmp_path / "nope.jsonl") == []


def test_appends_survive_across_opens(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.append({"event": "plan"})
    with Journal(path) as journal:
        journal.append({"event": "lease", "unit": 1})
    assert [e["event"] for e in read_events(path)] == ["plan", "lease"]


def test_torn_trailing_line_is_dropped(tmp_path):
    # A crash mid-append leaves a truncated final line; everything
    # acknowledged before it must still replay.
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.append({"event": "plan"})
        journal.append({"event": "lease", "unit": 0})
    with open(path, "a") as handle:
        handle.write('{"event": "commit", "unit": 0, "outc')
    events = read_events(path)
    assert [e["event"] for e in events] == ["plan", "lease"]


def test_mid_file_corruption_raises(tmp_path):
    # Corruption *before* the last line is not a torn write — it means
    # the file is damaged and silently resuming from it would lose
    # acknowledged state.
    path = tmp_path / "j.jsonl"
    lines = [json.dumps({"event": "plan"}), "garbage {{{",
             json.dumps({"event": "lease", "unit": 0})]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError):
        read_events(path)


def test_non_object_line_raises(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('["not", "an", "event"]\n{"event": "plan"}\n')
    with pytest.raises(ValueError):
        read_events(path)


def test_kind_filter(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        for event in ({"event": "plan"}, {"event": "lease", "unit": 0},
                      {"event": "commit", "unit": 0, "outcomes": []},
                      {"event": "lease", "unit": 1}):
            journal.append(event)
    leases = read_events(path, kinds=("lease",))
    assert [e["unit"] for e in leases] == [0, 1]
