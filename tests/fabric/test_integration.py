"""Coordinator + workers end to end, in process, on localhost.

The differential contract under test: a fabric run must resolve
exactly the cells a single-machine ``SweepEngine`` run resolves, with
deterministically-identical outcomes (volatile fields stripped via
:func:`deterministic_outcome_view`), no cell lost and no cell
duplicated — including across a coordinator kill + journal resume.
"""

import threading

import pytest

from repro.cli import build_parser, _grid_specs
from repro.fabric import (
    Coordinator,
    CoordinatorConfig,
    EXIT_COORDINATOR_GONE,
    EXIT_DONE,
    FabricError,
    FabricWorker,
    WorkerConfig,
    read_events,
)
from repro.runner import SweepConfig, SweepEngine
from repro.runner.trace import deterministic_outcome_view


def grid(cases="ieee30", targets="1,2", scenarios=2):
    args = build_parser().parse_args(
        ["coordinate", "--cases", cases, "--targets", targets,
         "--scenarios", str(scenarios), "--analyzer", "fast"])
    return _grid_specs(args)


def config_for(tmp_path, **overrides):
    overrides.setdefault("journal_path", str(tmp_path / "j.jsonl"))
    overrides.setdefault("cache_dir", None)
    overrides.setdefault("use_cache", False)
    overrides.setdefault("unit_cells", 2)
    overrides.setdefault("lease_ttl", 10.0)
    return CoordinatorConfig(**overrides)


def run_workers(coordinator, count=2, **worker_overrides):
    worker_overrides.setdefault("use_cache", False)
    results = []

    def run(i):
        worker = FabricWorker(
            coordinator.url,
            WorkerConfig(worker_id=f"w{i}", **worker_overrides))
        results.append((worker.run(), worker.stats()))

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    assert coordinator.wait(timeout=180.0)
    for thread in threads:
        thread.join(30.0)
    return results


def deterministic_views(trace):
    views = {}
    for outcome in trace.outcomes:
        label = outcome.spec.label
        assert label not in views, f"duplicate cell: {label}"
        views[label] = deterministic_outcome_view(outcome.to_dict())
    return views


def serial_views(specs):
    serial = SweepEngine(SweepConfig(workers=1, use_cache=False))
    return deterministic_views(serial.run(specs))


def test_fleet_matches_serial_sweep(tmp_path):
    specs = grid()
    coordinator = Coordinator(specs, config_for(tmp_path)).start()
    try:
        results = run_workers(coordinator, count=2)
        trace = coordinator.trace(1.0, workers=2)
    finally:
        coordinator.shutdown()
    assert all(code == EXIT_DONE for code, _ in results)
    assert sum(s["cells"] for _, s in results) == len(specs)
    assert deterministic_views(trace) == serial_views(specs)
    status = coordinator.status()
    assert status["done"]
    assert status["failed"] == 0
    assert status["duplicate_commits"] == 0


def test_coordinator_kill_and_resume_loses_nothing(tmp_path):
    """Satellite: crash mid-dispatch, restart from the journal, and the
    fleet finishes with zero lost and zero duplicated cells."""
    specs = grid(targets="1,2,3")        # 6 cells → 3 units of 2
    config = config_for(tmp_path)
    first = Coordinator(specs, config).start()
    try:
        # One worker commits exactly one unit, then stops; the
        # coordinator is then abandoned mid-grid (never shut down
        # cleanly — shutdown() closes the journal, a kill would not).
        worker = FabricWorker(first.url, WorkerConfig(
            worker_id="w0", use_cache=False, max_units=1))
        assert worker.run() == EXIT_DONE
        assert worker.units_done == 1
        assert not first.queue.done
    finally:
        first._httpd.shutdown()
        first._httpd.server_close()

    # A fresh coordinator on the same journal resumes the remainder.
    second = Coordinator(specs, config).start()
    try:
        status = second.status()
        assert status["resumed"]
        assert status["generation"] == 1
        assert status["journal_recovered"] == 2
        assert status["cells_resolved_at_plan"] == 2
        results = run_workers(second, count=2)
        trace = second.trace(1.0, workers=2)
    finally:
        second.shutdown()
    assert all(code == EXIT_DONE for code, _ in results)
    # Committed-before-the-kill cells were not re-executed...
    assert sum(s["cells"] for _, s in results) == len(specs) - 2
    # ...and the merged result is byte-identical to the serial run.
    assert deterministic_views(trace) == serial_views(specs)
    # The old generation was rotated aside, not destroyed.
    assert (tmp_path / "j.jsonl.1").exists()


def test_second_resume_only_needs_the_newest_journal(tmp_path):
    specs = grid(targets="1,2,3")
    config = config_for(tmp_path)
    for _generation in (0, 1):
        coordinator = Coordinator(specs, config).start()
        worker = FabricWorker(coordinator.url, WorkerConfig(
            worker_id="w0", use_cache=False, max_units=1))
        assert worker.run() == EXIT_DONE
        coordinator._httpd.shutdown()
        coordinator._httpd.server_close()

    # Generation 1's journal is self-contained: drop generation 0's
    # rotated file entirely and resume still sees all 4 resolved cells.
    (tmp_path / "j.jsonl.1").unlink()
    final = Coordinator(specs, config).start()
    try:
        status = final.status()
        assert status["generation"] == 2
        # one unit committed per earlier generation (unit sizes vary
        # with the encoding-group split, so count cells, not units)
        assert 2 <= status["journal_recovered"] < len(specs)
        assert status["cells_resolved_at_plan"] \
            == status["journal_recovered"]
        run_workers(final, count=1)
        trace = final.trace(1.0, workers=1)
    finally:
        final.shutdown()
    assert deterministic_views(trace) == serial_views(specs)


def test_resume_refuses_a_different_grid(tmp_path):
    config = config_for(tmp_path)
    first = Coordinator(grid(targets="1,2"), config)
    first.prepare()
    first.journal.close()
    with pytest.raises(FabricError, match="different grid"):
        Coordinator(grid(targets="1,3"), config).prepare()


def test_cache_read_through_resolves_at_plan_time(tmp_path):
    specs = grid()
    cache_dir = str(tmp_path / "cache")
    config = config_for(tmp_path, cache_dir=cache_dir, use_cache=True)
    first = Coordinator(specs, config).start()
    try:
        run_workers(first, count=2, cache_dir=cache_dir,
                    use_cache=True)
        trace = first.trace(1.0, workers=2)
    finally:
        first.shutdown()
    views = deterministic_views(trace)

    # A second run over the same grid needs no worker at all: every
    # cell is served from the shared cache at plan time.
    config2 = config_for(tmp_path,
                         journal_path=str(tmp_path / "j2.jsonl"),
                         cache_dir=cache_dir, use_cache=True)
    second = Coordinator(specs, config2).start()
    try:
        status = second.status()
        assert status["cache_hits"] == len(specs)
        assert status["units"] == 0
        assert status["done"]
        trace2 = second.trace(0.1, workers=0)
    finally:
        second.shutdown()
    assert deterministic_views(trace2) == views
    assert all(o.cache_hit for o in trace2.outcomes)


def test_worker_exits_2_when_coordinator_dies(tmp_path):
    specs = grid()
    coordinator = Coordinator(specs, config_for(tmp_path)).start()
    url = coordinator.url
    coordinator.shutdown()
    worker = FabricWorker(url, WorkerConfig(worker_id="w0",
                                            use_cache=False))
    worker.client.retries = 1
    worker.client.backoff_seconds = 0.01
    assert worker.run() == EXIT_COORDINATOR_GONE


def test_journal_records_the_full_story(tmp_path):
    specs = grid()
    config = config_for(tmp_path)
    coordinator = Coordinator(specs, config).start()
    try:
        run_workers(coordinator, count=2)
    finally:
        coordinator.shutdown()
    events = read_events(tmp_path / "j.jsonl")
    assert events[0]["event"] == "plan"
    assert events[0]["cells"] == len(specs)
    kinds = [e["event"] for e in events]
    units = len(events[0]["units"])
    assert kinds.count("lease") == units
    assert kinds.count("commit") == units
    # every commit carries its unit's full outcome payloads
    for event in events:
        if event["event"] == "commit":
            assert len(event["outcomes"]) \
                == len(events[0]["units"][event["unit"]])
