"""Strict fabric wire-protocol parsing: stable codes, no surprises."""

import pytest

from repro.fabric.protocol import (
    FABRIC_PROTOCOL_VERSION,
    ProtocolError,
    parse_commit_request,
    parse_heartbeat_request,
    parse_lease_request,
)


def codes(err):
    return [d["code"] for d in err.value.report.to_dict()["diagnostics"]]


def test_lease_happy_path():
    assert parse_lease_request(
        {"worker": "w1",
         "protocol_version": FABRIC_PROTOCOL_VERSION}) == "w1"
    assert parse_lease_request({"worker": "w1"}) == "w1"   # pin optional


def test_lease_rejects_non_object():
    with pytest.raises(ProtocolError) as err:
        parse_lease_request(["worker"])
    assert codes(err) == ["protocol.malformed"]


def test_lease_rejects_unknown_fields():
    with pytest.raises(ProtocolError) as err:
        parse_lease_request({"worker": "w1", "wrokre": "oops"})
    assert "protocol.unknown_field" in codes(err)


def test_lease_rejects_version_mismatch():
    with pytest.raises(ProtocolError) as err:
        parse_lease_request({"worker": "w1", "protocol_version": 99})
    assert "protocol.version_mismatch" in codes(err)


@pytest.mark.parametrize("worker", [None, "", 7, ["w1"]])
def test_lease_rejects_bad_worker(worker):
    with pytest.raises(ProtocolError) as err:
        parse_lease_request({"worker": worker})
    assert "protocol.bad_field" in codes(err)


def test_heartbeat_happy_path():
    assert parse_heartbeat_request({"worker": "w1", "unit": 2},
                                   unit_count=3) == ("w1", 2)


@pytest.mark.parametrize("unit", [-1, 3, "1", 1.0, True, None])
def test_heartbeat_rejects_bad_unit(unit):
    with pytest.raises(ProtocolError) as err:
        parse_heartbeat_request({"worker": "w1", "unit": unit},
                                unit_count=3)
    assert "protocol.bad_field" in codes(err)


def test_commit_happy_path():
    worker, unit, outcomes = parse_commit_request(
        {"worker": "w1", "unit": 0, "outcomes": [{"status": "ok"}]},
        unit_count=1)
    assert (worker, unit) == ("w1", 0)
    assert outcomes == [{"status": "ok"}]


@pytest.mark.parametrize("outcomes", [None, [], {"status": "ok"},
                                      [{"status": "ok"}, "not-a-dict"]])
def test_commit_rejects_bad_outcomes(outcomes):
    with pytest.raises(ProtocolError) as err:
        parse_commit_request(
            {"worker": "w1", "unit": 0, "outcomes": outcomes},
            unit_count=1)
    assert "protocol.bad_field" in codes(err)


def test_commit_reports_every_problem_at_once():
    with pytest.raises(ProtocolError) as err:
        parse_commit_request(
            {"worker": "", "unit": 9, "outcomes": [], "extra": 1},
            unit_count=1)
    found = codes(err)
    assert "protocol.unknown_field" in found
    assert found.count("protocol.bad_field") == 3
