"""Maximize mode through the runner: specs, outcomes, cache, warm groups."""

import json
from fractions import Fraction

import pytest

from repro.exceptions import ModelError
from repro.runner.engine import (
    SweepConfig,
    SweepEngine,
    execute_scenario,
    execute_scenario_group,
    verify_cached_outcome,
)
from repro.runner.spec import ScenarioSpec
from repro.runner.trace import ScenarioOutcome


def _maximize_spec(**kwargs):
    kwargs.setdefault("analyzer", "fast")
    return ScenarioSpec.build("5bus-study1", search="maximize", **kwargs)


class TestSpec:
    def test_search_mode_validated(self):
        with pytest.raises(ModelError):
            ScenarioSpec.build("5bus-study1", search="minimize")

    def test_tolerance_requires_maximize(self):
        with pytest.raises(ModelError):
            ScenarioSpec.build("5bus-study1", tolerance="1/8")
        with pytest.raises(ModelError):
            ScenarioSpec.build("5bus-study1", search="maximize",
                               tolerance=0)

    def test_fingerprint_distinguishes_search_and_tolerance(self):
        decision = ScenarioSpec.build("5bus-study1")
        maximize = _maximize_spec(analyzer="auto")
        finer = ScenarioSpec.build("5bus-study1", search="maximize",
                                   tolerance="1/16")
        prints = {decision.fingerprint(), maximize.fingerprint(),
                  finer.fingerprint()}
        assert len(prints) == 3

    def test_maximize_label_and_exact_tolerance(self):
        spec = _maximize_spec(tolerance="0.25")
        assert spec.label.endswith("/max")
        assert spec.tolerance_fraction() == Fraction(1, 4)

    def test_decision_and_maximize_share_encoding_groups(self):
        decision = ScenarioSpec.build("5bus-study1", analyzer="fast")
        assert decision.encoding_group() == \
            _maximize_spec().encoding_group()


class TestOutcome:
    @pytest.fixture(scope="class")
    def outcome(self):
        spec = _maximize_spec()
        return execute_scenario(spec, spec.fingerprint())

    def test_execution_fills_max_impact_payload(self, outcome):
        assert outcome.status == "ok"
        assert outcome.satisfiable
        payload = outcome.max_impact
        assert payload["status"] == "complete"
        istar = Fraction(payload["max_increase_percent"])
        assert Fraction(4) < istar < Fraction(5)
        # verdict mirror: threshold corresponds to I*, not the anchor
        assert Fraction(outcome.threshold) == \
            Fraction(outcome.base_cost) * (1 + istar / 100)
        search = outcome.trace["session"]["search"]
        assert search["mode"] == "maximize"
        assert search["solve_at_calls"] == payload["solve_at_calls"]

    def test_round_trip_and_semantic_verification(self, outcome):
        spec = outcome.spec
        payload = json.loads(json.dumps(outcome.to_dict()))
        restored = ScenarioOutcome.from_dict(payload)
        verify_cached_outcome(restored, spec)

    def test_tampered_bracket_is_rejected(self, outcome):
        spec = outcome.spec
        tampered = json.loads(json.dumps(outcome.to_dict()))
        tampered["max_impact"]["lower_bound"] = "63"
        tampered["max_impact"]["upper_bound"] = "505/8"
        tampered["max_impact"]["max_increase_percent"] = "63"
        restored = ScenarioOutcome.from_dict(tampered)
        with pytest.raises(ValueError):
            verify_cached_outcome(restored, spec)

    def test_ok_maximize_outcome_requires_payload(self, outcome):
        stripped = json.loads(json.dumps(outcome.to_dict()))
        stripped["max_impact"] = None
        with pytest.raises(ValueError):
            ScenarioOutcome.from_dict(stripped)

    def test_decision_outcome_must_not_carry_payload(self):
        spec = ScenarioSpec.build("5bus-study1", analyzer="fast")
        outcome = execute_scenario(spec, spec.fingerprint())
        assert outcome.max_impact is None
        bad = json.loads(json.dumps(outcome.to_dict()))
        bad["max_impact"] = {"status": "complete"}
        with pytest.raises(ValueError):
            ScenarioOutcome.from_dict(bad)


class TestWarmGroup:
    def test_group_maximize_matches_cold_and_reuses_encoding(self):
        specs = [ScenarioSpec.build("5bus-study1", analyzer="smt",
                                    target=3),
                 ScenarioSpec.build("5bus-study1", analyzer="smt",
                                    search="maximize")]
        outcomes = execute_scenario_group(
            specs, [s.fingerprint() for s in specs])
        assert [o.status for o in outcomes] == ["ok", "ok"]
        warm = outcomes[1]
        cold = execute_scenario(specs[1], specs[1].fingerprint())
        assert warm.max_impact["max_increase_percent"] == \
            cold.max_impact["max_increase_percent"]
        # the decision cell built the encoding; the maximize cell only
        # re-solved warm inside it
        assert warm.max_impact["encodings_built"] == 0
        assert warm.max_impact["warm_solves"] == \
            warm.max_impact["solve_at_calls"]


class TestEngineCache:
    def test_sweep_caches_and_reverifies_maximize_cells(self, tmp_path):
        spec = _maximize_spec()
        config = SweepConfig(workers=1, cache_dir=str(tmp_path))
        first = SweepEngine(config).run([spec])
        assert [o.status for o in first.outcomes] == ["ok"]
        assert first.cache_hits == 0
        second = SweepEngine(config).run([spec])
        assert second.cache_hits == 1
        served = second.outcomes[0]
        assert served.max_impact["max_increase_percent"] == \
            first.outcomes[0].max_impact["max_increase_percent"]
        assert second.to_dict()["totals"]["max_impact_cells"] == 1

    def test_budget_exhausted_maximize_is_unknown_with_bracket(self):
        spec = _maximize_spec()
        config = SweepConfig(workers=1, use_cache=False,
                             task_timeout=1e-9)
        trace = SweepEngine(config).run([spec])
        outcome = trace.outcomes[0]
        assert outcome.status == "unknown"
        assert outcome.max_impact["status"] == "budget_exhausted"
