"""MaxImpactSearch: exact bisection to the maximum achievable impact.

Pins the tentpole guarantees: warm and cold SMT agree with the fast
path on I* (within tolerance), the warm path does its O(log) probing on
*one* encoding, the reported I* never disagrees with a subsequent
``solve_at`` decision query (Fraction-exact arithmetic), and budget
exhaustion yields a partial bracket instead of a wrong answer.
"""

import math
from fractions import Fraction

import pytest

from repro.core import FastImpactAnalyzer, ImpactAnalyzer
from repro.defense import with_budgets
from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.search import DEFAULT_TOLERANCE, MaxImpactSearch
from repro.smt.budget import SolverBudget

TOL = DEFAULT_TOLERANCE


def _bisect(analyzer, **kwargs):
    return MaxImpactSearch(analyzer, **kwargs).run()


class TestFiveBusParity:
    """Acceptance: same I* via warm-SMT, cold-SMT and fast paths."""

    @pytest.fixture(scope="class")
    def results(self):
        case = get_case("5bus-study1")
        return {
            "warm": _bisect(ImpactAnalyzer(case, incremental=True)),
            "cold": _bisect(ImpactAnalyzer(case)),
            "fast": _bisect(FastImpactAnalyzer(case)),
        }

    def test_all_complete_and_satisfiable(self, results):
        for result in results.values():
            assert result.status == "complete"
            assert result.satisfiable
            assert result.witness is not None

    def test_same_istar_within_tolerance(self, results):
        values = [r.max_increase_percent for r in results.values()]
        assert max(values) - min(values) <= TOL
        # The paper's case study: the max 3%-style attack tops out just
        # below 4.5% on study 1.
        for value in values:
            assert Fraction(4) < value < Fraction(5)

    def test_brackets_are_tight_and_exact(self, results):
        for result in results.values():
            assert result.upper_bound - result.lower_bound <= TOL
            assert isinstance(result.lower_bound, Fraction)
            assert isinstance(result.upper_bound, Fraction)

    def test_warm_probes_one_encoding_olog_calls(self, results):
        warm = results["warm"]
        assert warm.encodings_built == 1
        assert warm.warm_solves == warm.solve_at_calls - 1
        # O(log((hi-lo)/eps)): gallop to 8 plus bisecting a <=4-wide
        # bracket at 1/8 tolerance stays well under this ceiling (a
        # linear sweep at the same resolution would take ~36 calls).
        bound = 3 + math.ceil(math.log2(64)) + \
            math.ceil(math.log2(64 / float(TOL)))
        assert warm.solve_at_calls <= bound
        cold = results["cold"]
        assert cold.encodings_built == cold.solve_at_calls
        assert cold.warm_solves == 0

    def test_istar_agrees_with_subsequent_decision_queries(self, results):
        """The satellite guarantee: solve_at(I*) SAT, solve_at(I*+eps)
        UNSAT — on a *fresh* analyzer, so no warm-state coincidence."""
        case = get_case("5bus-study1")
        for result in results.values():
            istar = result.max_increase_percent
            fresh = ImpactAnalyzer(case)
            assert fresh.solve_at(istar).satisfiable
            assert not ImpactAnalyzer(case).solve_at(
                istar + result.tolerance).satisfiable


class TestIeee14FastParity:
    def test_warm_equals_cold_fast(self):
        case = get_case("ieee14")
        warm_analyzer = FastImpactAnalyzer(case)
        warm = _bisect(warm_analyzer)
        cold = MaxImpactSearch(FastImpactAnalyzer(case)).run()
        assert warm.status == cold.status == "complete"
        assert warm.satisfiable == cold.satisfiable
        assert warm.lower_bound == cold.lower_bound
        assert warm.upper_bound == cold.upper_bound
        # one pipeline built, re-solved warm across the whole search
        assert warm.encodings_built == 1
        assert warm.warm_solves == warm.solve_at_calls - 1
        # and the verdict round-trips through a fresh decision query
        fresh = FastImpactAnalyzer(case)
        assert fresh.solve_at(warm.max_increase_percent).satisfiable
        assert not fresh.solve_at(
            warm.max_increase_percent + warm.tolerance).satisfiable


class TestPropertyRandomizedCases:
    """Property-style: random attacker budgets/seeds on the 5-bus case;
    the reported bracket must agree with subsequent decision queries."""

    SEEDS = [1, 2, 3, 5, 8]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_bracket_matches_decisions(self, seed):
        from repro.benchlib.scenarios import randomize_attacker
        case = randomize_attacker(get_case("5bus-study1"), seed)
        case = with_budgets(case, 2 + seed % 4, 1 + seed % 3)
        result = _bisect(FastImpactAnalyzer(case))
        assert result.status == "complete"
        fresh = FastImpactAnalyzer(case)
        if result.satisfiable:
            istar = result.max_increase_percent
            assert fresh.solve_at(istar).satisfiable
            assert not fresh.solve_at(istar + result.tolerance).satisfiable
        else:
            assert result.upper_bound == 0
            assert not fresh.solve_at(0).satisfiable

    def test_smt_bracket_matches_decisions_one_seed(self):
        from repro.benchlib.scenarios import randomize_attacker
        case = randomize_attacker(get_case("5bus-study1"), 7)
        result = _bisect(ImpactAnalyzer(case, incremental=True))
        assert result.status == "complete"
        fresh = ImpactAnalyzer(case)
        if result.satisfiable:
            istar = result.max_increase_percent
            assert fresh.solve_at(istar).satisfiable
            assert not fresh.solve_at(istar + result.tolerance).satisfiable
        else:
            assert not fresh.solve_at(0).satisfiable


class TestBudgetExhaustion:
    def test_exhausted_at_anchor_reports_empty_bracket(self):
        result = MaxImpactSearch(
            FastImpactAnalyzer(get_case("5bus-study1")),
            budget=SolverBudget(wall_seconds=1e-9)).run()
        assert result.status == "budget_exhausted"
        assert not result.satisfiable
        assert result.lower_bound is None
        assert result.upper_bound is None
        assert result.witness is None
        assert "wall-clock" in result.budget_reason

    def test_partial_bracket_is_sound(self):
        """Whatever the budget leaves proved must agree with fresh
        decision queries (the bracket is partial, never wrong)."""
        case = get_case("5bus-study1")
        result = MaxImpactSearch(
            ImpactAnalyzer(case, incremental=True),
            budget=SolverBudget(wall_seconds=0.5)).run()
        assert result.status in ("budget_exhausted", "complete")
        if result.lower_bound is not None:
            assert FastImpactAnalyzer(case).solve_at(
                result.lower_bound).satisfiable
        if result.upper_bound is not None:
            assert not FastImpactAnalyzer(case).solve_at(
                result.upper_bound).satisfiable
        if result.lower_bound is not None \
                and result.upper_bound is not None:
            assert result.lower_bound < result.upper_bound


class TestBracketControls:
    def test_explicit_hi_skips_gallop(self):
        result = MaxImpactSearch(
            FastImpactAnalyzer(get_case("5bus-study1")),
            hi=Fraction(8)).run()
        assert result.status == "complete"
        assert result.satisfiable
        # anchor + hi + pure bisection of an 8-wide bracket
        assert result.solve_at_calls == 2 + math.ceil(
            math.log2(8 / float(TOL)))

    def test_satisfiable_at_cap_reports_capped(self):
        # 5bus-study1 admits ~4.4%: capping the search below that leaves
        # the true I* outside the searched bracket.
        result = MaxImpactSearch(
            FastImpactAnalyzer(get_case("5bus-study1")),
            hi_cap=Fraction(2)).run()
        assert result.status == "capped"
        assert result.satisfiable
        assert result.lower_bound == 2
        assert result.upper_bound is None
        assert result.max_increase_percent == 2

    def test_unsat_anchor_closes_immediately(self):
        result = MaxImpactSearch(
            FastImpactAnalyzer(get_case("5bus-study1")),
            lo=Fraction(50)).run()
        assert result.status == "complete"
        assert not result.satisfiable
        assert result.max_increase_percent is None
        assert result.upper_bound == 50
        assert result.solve_at_calls == 1

    def test_invalid_parameters_rejected(self):
        analyzer = FastImpactAnalyzer(get_case("5bus-study1"))
        with pytest.raises(ModelError):
            MaxImpactSearch(analyzer, tolerance=0)
        with pytest.raises(ModelError):
            MaxImpactSearch(analyzer, tolerance=Fraction(-1, 8))
        with pytest.raises(ModelError):
            MaxImpactSearch(analyzer, lo=Fraction(-1))
        with pytest.raises(ModelError):
            MaxImpactSearch(analyzer, lo=Fraction(5), hi=Fraction(5))
        with pytest.raises(ModelError):
            MaxImpactSearch(analyzer, lo=Fraction(70))


class TestCertifiedSearch:
    def test_self_check_certifies_every_probe(self):
        result = MaxImpactSearch(
            ImpactAnalyzer(get_case("5bus-study2"), incremental=True),
            self_check=True).run()
        assert result.status == "complete"
        assert result.certified is True
        assert result.witness_report.certified is True

    def test_to_dict_round_trips_exact_bounds(self):
        result = MaxImpactSearch(
            FastImpactAnalyzer(get_case("5bus-study1"))).run()
        payload = result.to_dict()
        assert Fraction(payload["lower_bound"]) == result.lower_bound
        assert Fraction(payload["upper_bound"]) == result.upper_bound
        assert Fraction(payload["tolerance"]) == result.tolerance
        assert payload["max_increase_percent"] == payload["lower_bound"]
        assert payload["witness"]["excluded"] == \
            list(result.witness.excluded)
        assert len(payload["probes"]) == result.solve_at_calls


class TestFacadeConvenience:
    def test_max_impact_methods_agree(self):
        case = get_case("5bus-study1")
        smt = ImpactAnalyzer(case, incremental=True).max_impact()
        fast = FastImpactAnalyzer(case).max_impact(
            tolerance=Fraction(1, 4))
        assert smt.status == fast.status == "complete"
        assert abs(smt.max_increase_percent
                   - fast.max_increase_percent) <= Fraction(1, 4)
