"""Tests for PTDF/LODF/LCDF against exact power-flow recomputation."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.grid.dcpf import net_injections, solve_dc_power_flow
from repro.grid.sensitivities import (
    compute_ptdf,
    flows_after_exclusion,
    flows_after_inclusion,
    lodf_column,
)


def base_setup(name, line_indices=None):
    grid = get_case(name).build_grid()
    dispatch = {b: float(p) for b, p in proportional_dispatch(
        list(grid.generators.values()), grid.total_load()).items()}
    injections = net_injections(grid, dispatch)
    factors = compute_ptdf(grid, line_indices)
    return grid, dispatch, injections, factors


class TestPtdf:
    def test_flows_match_power_flow(self):
        grid, dispatch, injections, factors = base_setup("5bus-study1")
        exact = solve_dc_power_flow(grid, dispatch)
        flows = factors.flows_for_injections(injections)
        for row, line_index in enumerate(factors.lines):
            assert flows[row] == pytest.approx(exact.flow(line_index),
                                               abs=1e-9)

    def test_reference_column_zero(self):
        grid, _, _, factors = base_setup("ieee14")
        assert np.allclose(factors.ptdf[:, grid.reference_bus - 1], 0)

    def test_transfer_factor_antisymmetric(self):
        _, _, _, factors = base_setup("ieee14")
        forward = factors.transfer_factor(3, 2, 5)
        backward = factors.transfer_factor(3, 5, 2)
        assert forward == pytest.approx(-backward)

    def test_disconnected_base_rejected(self):
        grid = get_case("5bus-study1").build_grid()
        with pytest.raises(ModelError):
            compute_ptdf(grid, [1, 3, 4, 6])


class TestLodf:
    @pytest.mark.parametrize("case_name", ["5bus-study1", "ieee14"])
    def test_matches_exact_outage(self, case_name):
        """LODF-corrected flows equal a fresh solve without the line."""
        grid, dispatch, injections, factors = base_setup(case_name)
        base = factors.flows_for_injections(injections)
        for outage in factors.lines:
            remaining = [i for i in factors.lines if i != outage]
            if not grid.is_connected(remaining):
                continue  # bridge line: LODF undefined
            predicted = flows_after_exclusion(factors, base, outage)
            exact = solve_dc_power_flow(grid, dispatch,
                                        line_indices=remaining)
            for row, line_index in enumerate(factors.lines):
                assert predicted[row] == pytest.approx(
                    exact.flow(line_index), abs=1e-7), \
                    (outage, line_index)

    def test_bridge_outage_rejected(self):
        # In the 5-bus system, make line 1 the only path to bus 1 by using
        # a base topology without line 2: line 1 becomes a bridge.
        grid, _, _, _ = base_setup("5bus-study1")
        factors = compute_ptdf(grid, [1, 3, 4, 5, 6, 7])
        with pytest.raises(ModelError):
            lodf_column(factors, 1)

    def test_outaged_line_entry_is_minus_one(self):
        _, _, _, factors = base_setup("ieee14")
        column = lodf_column(factors, 3)
        assert column[factors.row_of(3)] == -1.0


class TestLcdf:
    @pytest.mark.parametrize("case_name", ["5bus-study1", "ieee14"])
    def test_matches_exact_closure(self, case_name):
        """Closing an open line via LCDF equals a fresh solve with it."""
        grid = get_case(case_name).build_grid()
        dispatch = {b: float(p) for b, p in proportional_dispatch(
            list(grid.generators.values()), grid.total_load()).items()}
        injections = net_injections(grid, dispatch)
        all_lines = [l.index for l in grid.lines]
        rng = random.Random(7)
        for new_line in rng.sample(all_lines, min(4, len(all_lines))):
            base_lines = [i for i in all_lines if i != new_line]
            if not grid.is_connected(base_lines):
                continue
            factors = compute_ptdf(grid, base_lines)
            base = factors.flows_for_injections(injections)
            predicted, new_flow = flows_after_inclusion(
                factors, base, new_line, injections)
            exact = solve_dc_power_flow(grid, dispatch)
            assert new_flow == pytest.approx(exact.flow(new_line), abs=1e-7)
            for row, line_index in enumerate(factors.lines):
                assert predicted[row] == pytest.approx(
                    exact.flow(line_index), abs=1e-7), (new_line, line_index)

    def test_closing_base_line_rejected(self):
        _, _, injections, factors = base_setup("5bus-study1")
        with pytest.raises(ModelError):
            flows_after_inclusion(factors, np.zeros(len(factors.lines)), 3,
                                  injections)


class TestRandomizedInjections:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**30))
    def test_lodf_exactness_random_injections(self, seed):
        grid = get_case("ieee14").build_grid()
        rng = random.Random(seed)
        dispatch = {b: rng.uniform(0.0, 0.5) for b in grid.generators}
        loads = {b: rng.uniform(0.0, 0.3) for b in grid.loads}
        injections = net_injections(grid, dispatch, loads)
        factors = compute_ptdf(grid)
        base = factors.flows_for_injections(injections)
        outage = rng.choice(factors.lines)
        remaining = [i for i in factors.lines if i != outage]
        if not grid.is_connected(remaining):
            return
        predicted = flows_after_exclusion(factors, base, outage)
        exact = solve_dc_power_flow(grid, dispatch, loads,
                                    line_indices=remaining)
        for row, line_index in enumerate(factors.lines):
            assert predicted[row] == pytest.approx(exact.flow(line_index),
                                                   abs=1e-7)
