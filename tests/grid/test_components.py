"""Tests for grid components and their validation."""

from fractions import Fraction

import pytest

from repro.exceptions import ModelError
from repro.grid.components import Bus, Generator, Line, Load


class TestBus:
    def test_defaults(self):
        bus = Bus(3)
        assert bus.name == "bus3"
        assert not bus.is_generator and not bus.is_load

    def test_invalid_index(self):
        with pytest.raises(ModelError):
            Bus(0)


class TestLine:
    def test_exact_values(self):
        line = Line(1, 1, 2, "16.90", "0.15")
        assert line.admittance == Fraction(169, 10)
        assert line.capacity == Fraction(3, 20)

    def test_reactance_is_reciprocal(self):
        line = Line(1, 1, 2, 4, 1)
        assert line.reactance == Fraction(1, 4)

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            Line(1, 2, 2, 1, 1)

    def test_nonpositive_admittance_rejected(self):
        with pytest.raises(ModelError):
            Line(1, 1, 2, 0, 1)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ModelError):
            Line(1, 1, 2, 1, 0)

    def test_touches_and_other_end(self):
        line = Line(1, 3, 7, 1, 1)
        assert line.touches(3) and line.touches(7) and not line.touches(5)
        assert line.other_end(3) == 7
        assert line.other_end(7) == 3
        with pytest.raises(ModelError):
            line.other_end(5)


class TestGenerator:
    def test_cost_function(self):
        gen = Generator(1, "0.8", "0.1", 60, 1800)
        assert gen.cost("0.5") == 60 + 900

    def test_limit_ordering_enforced(self):
        with pytest.raises(ModelError):
            Generator(1, "0.1", "0.8", 60, 1800)

    def test_negative_minimum_rejected(self):
        with pytest.raises(ModelError):
            Generator(1, "0.8", "-0.1", 60, 1800)


class TestLoad:
    def test_in_range(self):
        load = Load(2, "0.21", "0.30", "0.10")
        assert load.existing == Fraction(21, 100)

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            Load(2, "0.40", "0.30", "0.10")
