"""Tests for the case-definition format: parsing, writing, round-trips."""

from fractions import Fraction

import pytest

from repro.exceptions import CaseFieldError, InputFormatError, ModelError
from repro.grid.caseio import parse_case, write_case
from repro.grid.cases import case_names, get_case

SAMPLE = """
# Topology (Line) Information
# (line no, from bus, to bus, admittance, line capacity, knowledge?, in true topology?, in core?, secured?, can alter?)
1 1 2 16.90 0.15 1 1 1 0 0
2 2 3 4.48 0.15 1 1 1 0 1
3 1 3 5.05 0.05 1 0 0 0 1
# Measurement Information
# (measurement no, measurement taken?, secured?, can attacker alter?)
1 1 1 0
2 1 0 1
3 0 0 0
4 1 0 1
5 1 0 1
6 1 1 0
7 1 0 1
8 1 0 1
9 1 1 1
# Attacker's Resource Limitation (measurements, buses)
4 2
# Bus Types (bus no, is generator?, is load?)
1 1 0
2 0 1
3 1 1
# Generator Information (bus no, max generation, min generation, cost coefficient)
1 0.80 0.10 60 1800
3 0.50 0.10 60 1200
# Load Information (bus no, existing load, max load, min load)
2 0.21 0.30 0.10
3 0.24 0.25 0.15
# Cost Constraint, Minimum Cost Increase by Attack (in percentage)
1580 3
"""


class TestParse:
    def test_sections(self):
        case = parse_case(SAMPLE, "sample")
        assert case.num_lines == 3
        assert case.num_buses == 3
        assert case.num_potential_measurements == 9
        assert case.resource_measurements == 4
        assert case.resource_buses == 2
        assert case.base_cost == 1580
        assert case.min_increase_percent == 3

    def test_line_flags(self):
        case = parse_case(SAMPLE)
        spec = case.line_spec(3)
        assert not spec.in_true_topology
        assert spec.status_alterable
        assert spec.admittance == Fraction(101, 20)

    def test_measurement_flags(self):
        case = parse_case(SAMPLE)
        assert case.measurement(1).secured
        assert not case.measurement(3).taken
        assert case.measurement(9).alterable

    def test_build_grid_excludes_open_lines(self):
        grid = parse_case(SAMPLE).build_grid()
        assert not grid.line(3).in_service
        assert grid.line(1).in_service

    def test_data_before_header_rejected(self):
        with pytest.raises(InputFormatError):
            parse_case("1 2 3\n# Topology (Line) Information\n")

    def test_bad_flag_rejected(self):
        bad = SAMPLE.replace("1 1 1 0 0", "1 1 1 0 2", 1)
        with pytest.raises(InputFormatError):
            parse_case(bad)

    def test_missing_resource_row_rejected(self):
        bad = SAMPLE.replace("4 2", "")
        with pytest.raises(InputFormatError):
            parse_case(bad)

    def test_wrong_measurement_count_rejected(self):
        # Cross-section consistency failures surface as input-format
        # errors at the parse boundary (not bare ModelError tracebacks).
        bad = SAMPLE.replace("9 1 1 1\n", "")
        with pytest.raises(CaseFieldError) as info:
            parse_case(bad)
        assert info.value.path == "case"
        assert "measurement" in str(info.value)


class TestFieldErrors:
    """Malformed fields carry their path instead of a raw traceback."""

    def test_zero_denominator_admittance(self):
        # Fraction("1/0") raises ZeroDivisionError, which previously
        # escaped parse_case as an uncaught exception.
        bad = SAMPLE.replace("16.90", "1/0", 1)
        with pytest.raises(CaseFieldError) as exc:
            parse_case(bad)
        assert exc.value.path == "topology[0].admittance"

    def test_non_numeric_capacity(self):
        bad = SAMPLE.replace("16.90 0.15", "16.90 lots", 1)
        with pytest.raises(CaseFieldError) as exc:
            parse_case(bad)
        assert exc.value.path == "topology[0].capacity"

    def test_bad_flag_names_the_field(self):
        bad = SAMPLE.replace("1 1 1 0 0", "1 1 1 0 2", 1)
        with pytest.raises(CaseFieldError) as exc:
            parse_case(bad)
        assert exc.value.path.endswith(".alterable")

    def test_short_row_reports_field_count(self):
        bad = SAMPLE.replace("2 0.21 0.30 0.10", "2 0.21 0.30", 1)
        with pytest.raises(CaseFieldError) as exc:
            parse_case(bad)
        assert exc.value.path == "load[0]"
        assert "expected 4 fields" in str(exc.value)

    def test_inconsistent_generator_limits_carry_row_path(self):
        bad = SAMPLE.replace("1 0.80 0.10 60 1800",
                             "1 0.10 0.80 60 1800", 1)
        with pytest.raises(CaseFieldError) as exc:
            parse_case(bad)
        assert exc.value.path == "generator[0]"

    def test_bad_resource_count_field(self):
        bad = SAMPLE.replace("\n4 2\n", "\n4 x\n", 1)
        with pytest.raises(CaseFieldError) as exc:
            parse_case(bad)
        assert exc.value.path == "resource[0].buses"

    def test_field_error_is_an_input_format_error(self):
        assert issubclass(CaseFieldError, InputFormatError)


class TestRoundTrip:
    @pytest.mark.parametrize("name", case_names())
    def test_write_then_parse_preserves_everything(self, name):
        original = get_case(name)
        text = write_case(original)
        parsed = parse_case(text, name)
        assert parsed.num_lines == original.num_lines
        assert parsed.num_buses == original.num_buses
        assert parsed.resource_measurements == original.resource_measurements
        assert parsed.resource_buses == original.resource_buses
        assert parsed.base_cost == original.base_cost
        for a, b in zip(parsed.line_specs, original.line_specs):
            assert (a.from_bus, a.to_bus) == (b.from_bus, b.to_bus)
            assert float(a.admittance) == pytest.approx(float(b.admittance))
            assert a.in_core == b.in_core
            assert a.status_secured == b.status_secured
        for a, b in zip(parsed.measurement_specs, original.measurement_specs):
            assert (a.taken, a.secured, a.alterable) == \
                (b.taken, b.secured, b.alterable)
        for a, b in zip(parsed.generators, original.generators):
            assert a.bus == b.bus
            assert float(a.cost_beta) == pytest.approx(float(b.cost_beta))


class TestCaseRegistry:
    def test_unknown_case(self):
        with pytest.raises(ModelError):
            get_case("ieee9000")

    @pytest.mark.parametrize("name,buses,lines,gens", [
        ("5bus-study1", 5, 7, 3),
        ("5bus-study2", 5, 7, 3),
        ("ieee14", 14, 20, 5),
        ("ieee30", 30, 41, 6),
        ("ieee57", 57, 80, 7),
        ("ieee118", 118, 186, 23),
    ])
    def test_dimensions_match_paper(self, name, buses, lines, gens):
        case = get_case(name)
        assert case.num_buses == buses
        assert case.num_lines == lines
        assert len(case.generators) == gens

    def test_cases_are_deterministic(self):
        a = get_case("ieee30")
        b = get_case("ieee30")
        assert write_case(a) == write_case(b)

    @pytest.mark.parametrize("name", case_names())
    def test_generation_covers_load(self, name):
        grid = get_case(name).build_grid()
        assert grid.total_generation_capacity() >= grid.total_load()

    @pytest.mark.parametrize("name", case_names())
    def test_grid_connected(self, name):
        assert get_case(name).build_grid().is_connected()


class TestPaperTableII:
    """Spot checks against the literal content of paper Table II."""

    def test_line_6_attributes(self):
        case = get_case("5bus-study1")
        spec = case.line_spec(6)
        assert (spec.from_bus, spec.to_bus) == (3, 4)
        assert float(spec.admittance) == pytest.approx(5.85)
        assert float(spec.capacity) == pytest.approx(0.20)
        assert not spec.in_core and not spec.status_secured
        assert spec.status_alterable

    def test_untaken_measurements(self):
        case = get_case("5bus-study1")
        untaken = [m.index for m in case.measurement_specs if not m.taken]
        assert untaken == [4, 8, 9, 11]

    def test_alterable_measurements(self):
        case = get_case("5bus-study1")
        alterable = [m.index for m in case.measurement_specs if m.alterable]
        assert alterable == [6, 7, 10, 12, 13, 14, 17, 18, 19]

    def test_study2_secured_measurements(self):
        case = get_case("5bus-study2")
        secured = [m.index for m in case.measurement_specs if m.secured]
        assert secured == [1, 2, 15]
        assert all(m.taken for m in case.measurement_specs)
