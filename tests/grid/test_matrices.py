"""Tests for network matrices (A, D, B, H)."""

import numpy as np
import pytest

from repro.grid.cases import get_case
from repro.grid.matrices import (
    active_lines,
    admittance_matrix,
    connectivity_matrix,
    measurement_matrix,
    state_order,
    susceptance_matrix,
)


@pytest.fixture
def grid():
    return get_case("5bus-study1").build_grid()


class TestConnectivity:
    def test_shape_and_entries(self, grid):
        A = connectivity_matrix(grid)
        assert A.shape == (7, 5)
        # Line 6: from 3 to 4.
        assert A[5, 2] == 1 and A[5, 3] == -1
        assert np.all(A.sum(axis=1) == 0)

    def test_row_selection(self, grid):
        A = connectivity_matrix(grid, [1, 6])
        assert A.shape == (2, 5)
        assert active_lines(grid, [6, 1]) == [1, 6]

    def test_excluded_out_of_service(self, grid):
        modified = grid.with_line_statuses({6: False})
        assert active_lines(modified) == [1, 2, 3, 4, 5, 7]


class TestSusceptance:
    def test_symmetry(self, grid):
        B = susceptance_matrix(grid, reduced=False)
        assert np.allclose(B, B.T)

    def test_full_matrix_singular_reduced_not(self, grid):
        B_full = susceptance_matrix(grid, reduced=False)
        B_red = susceptance_matrix(grid, reduced=True)
        assert np.linalg.matrix_rank(B_full) == 4
        assert np.linalg.matrix_rank(B_red) == 4
        assert B_red.shape == (4, 4)

    def test_diagonal_is_sum_of_incident_admittances(self, grid):
        B = susceptance_matrix(grid, reduced=False)
        for bus in grid.buses:
            expected = sum(float(l.admittance)
                           for l in grid.lines_at(bus.index))
            assert B[bus.index - 1, bus.index - 1] == pytest.approx(expected)


class TestMeasurementMatrix:
    def test_shape(self, grid):
        H = measurement_matrix(grid)
        assert H.shape == (19, 4)

    def test_backward_rows_negate_forward(self, grid):
        H = measurement_matrix(grid)
        l = grid.num_lines
        assert np.allclose(H[:l], -H[l:2 * l])

    def test_consumption_rows_sum_flow_rows(self, grid):
        """Eq. 8: consumption at j = sum(in flows) - sum(out flows)."""
        H = measurement_matrix(grid)
        l = grid.num_lines
        for bus in grid.buses:
            expected = np.zeros(H.shape[1])
            for line in grid.lines_in(bus.index):
                expected += H[line.index - 1]
            for line in grid.lines_out(bus.index):
                expected -= H[line.index - 1]
            assert np.allclose(H[2 * l + bus.index - 1], expected)

    def test_excluded_line_rows_are_zero(self, grid):
        H = measurement_matrix(grid, [1, 2, 3, 4, 5, 7])
        assert np.allclose(H[5], 0)      # forward flow of line 6
        assert np.allclose(H[12], 0)     # backward flow of line 6

    def test_state_order_skips_reference(self, grid):
        assert state_order(grid) == [2, 3, 4, 5]

    def test_full_rank_when_connected(self, grid):
        H = measurement_matrix(grid)
        assert np.linalg.matrix_rank(H) == grid.num_buses - 1


class TestAdmittance:
    def test_diagonal(self, grid):
        D = admittance_matrix(grid)
        assert D.shape == (7, 7)
        assert D[5, 5] == pytest.approx(5.85)
        assert np.allclose(D, np.diag(np.diag(D)))
