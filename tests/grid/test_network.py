"""Tests for the Grid container."""

from fractions import Fraction

import pytest

from repro.exceptions import ModelError
from repro.grid.components import Bus, Generator, Line, Load
from repro.grid.network import Grid
from repro.grid.cases import get_case


@pytest.fixture
def five_bus():
    return get_case("5bus-study1").build_grid()


class TestConstruction:
    def test_dimensions(self, five_bus):
        assert five_bus.num_buses == 5
        assert five_bus.num_lines == 7
        assert five_bus.num_potential_measurements == 19

    def test_noncontiguous_buses_rejected(self):
        with pytest.raises(ModelError):
            Grid([Bus(1), Bus(3)], [])

    def test_noncontiguous_lines_rejected(self):
        with pytest.raises(ModelError):
            Grid([Bus(1), Bus(2)], [Line(2, 1, 2, 1, 1)])

    def test_line_to_unknown_bus_rejected(self):
        with pytest.raises(ModelError):
            Grid([Bus(1), Bus(2)], [Line(1, 1, 9, 1, 1)])

    def test_duplicate_generator_rejected(self):
        with pytest.raises(ModelError):
            Grid([Bus(1), Bus(2)], [Line(1, 1, 2, 1, 1)],
                 [Generator(1, 1, 0, 1, 1), Generator(1, 2, 0, 1, 1)])

    def test_unknown_reference_bus_rejected(self):
        with pytest.raises(ModelError):
            Grid([Bus(1)], [], reference_bus=5)


class TestIncidence:
    def test_lines_in_out(self, five_bus):
        # Line 6 runs 3 -> 4.
        assert [l.index for l in five_bus.lines_out(3)] == [6]
        in_4 = [l.index for l in five_bus.lines_in(4)]
        assert 6 in in_4 and 4 in in_4

    def test_lines_at(self, five_bus):
        at_5 = {l.index for l in five_bus.lines_at(5)}
        assert at_5 == {2, 5, 7}

    def test_totals(self, five_bus):
        assert five_bus.total_load() == Fraction(83, 100)
        assert five_bus.total_generation_capacity() == Fraction(19, 10)


class TestTopology:
    def test_connected_default(self, five_bus):
        assert five_bus.is_connected()

    def test_disconnected_when_cut(self, five_bus):
        # Cutting lines 2, 5 and 7 isolates bus 5.
        assert not five_bus.is_connected([1, 3, 4, 6])

    def test_connected_spanning_subset(self, five_bus):
        assert five_bus.is_connected([1, 2, 3, 4])

    def test_with_line_statuses(self, five_bus):
        modified = five_bus.with_line_statuses({6: False})
        assert not modified.line(6).in_service
        assert five_bus.line(6).in_service  # original untouched
        assert len(modified.in_service_lines()) == 6

    def test_with_loads_widens_bounds(self, five_bus):
        shifted = five_bus.with_loads({3: Fraction(29, 100),
                                       5: Fraction(1, 10)})
        assert shifted.loads[3].existing == Fraction(29, 100)
        assert shifted.loads[5].existing == Fraction(1, 10)
        assert shifted.loads[2].existing == five_bus.loads[2].existing

    def test_with_loads_total_changes(self, five_bus):
        shifted = five_bus.with_loads({2: Fraction(0)})
        assert shifted.total_load() == five_bus.total_load() - Fraction(21, 100)
