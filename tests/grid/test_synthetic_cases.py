"""Regression tests for the deterministic synthetic case generators.

The four scaling cases (300/1354/2869/10000 buses) must be connected,
dimensionally exact and *byte-identical* across generations — their
serialized text is part of every scenario fingerprint, so any
nondeterminism would silently split the result cache.  The historical
IEEE-30/57/118 substitutes must survive topology-generator changes
byte for byte as well.
"""

import pytest

from repro.grid.caseio import write_case
from repro.grid.cases import SCALING_SWEEP, get_case
from repro.grid.cases.synthetic import random_topology

EXPECTED_DIMENSIONS = {
    "synth300": (300, 411, 30),
    "synth1354": (1354, 1991, 80),
    "synth2869": (2869, 4582, 120),
    "synth10000": (10000, 13500, 250),
}


def test_scaling_sweep_names_all_sizes():
    assert SCALING_SWEEP == list(EXPECTED_DIMENSIONS)


@pytest.mark.parametrize("name", list(EXPECTED_DIMENSIONS))
def test_dimensions_and_connectivity(name):
    case = get_case(name)
    buses, lines, gens = EXPECTED_DIMENSIONS[name]
    assert case.num_buses == buses
    assert case.num_lines == lines
    assert len(case.generators) == gens
    grid = case.build_grid()
    assert grid.is_connected([l.index for l in grid.lines])


@pytest.mark.parametrize("name", list(EXPECTED_DIMENSIONS))
def test_byte_identical_across_generations(name):
    assert write_case(get_case(name)) == write_case(get_case(name))


@pytest.mark.parametrize("name", ["synth300", "synth1354", "synth2869"])
def test_preflight_clean(name):
    """The scaling cases pass validation without errors.

    (synth10000 is exercised by the scaling benchmark; its preflight
    takes ~15s, too slow for the unit tier.)
    """
    from repro.validation.checks import validate_case
    report = validate_case(get_case(name))
    assert report.ok, report.fatal


def test_random_topology_exact_line_count():
    """The completion sweep guarantees the requested branch budget."""
    for num_buses, num_lines in ((50, 75), (200, 270), (300, 411)):
        branches = random_topology(num_buses, num_lines, seed=1,
                                   span=8, tie_probability=0.02,
                                   tie_span=64)
        assert len(branches) == num_lines
        keys = {(f, t) for f, t, _ in branches}
        assert len(keys) == num_lines        # no duplicate edges


def test_random_topology_rejects_impossible_budgets():
    with pytest.raises(ValueError):
        random_topology(10, 8, seed=1)       # below spanning tree
    with pytest.raises(ValueError):
        random_topology(4, 7, seed=1)        # above complete graph


def test_legacy_cases_unchanged():
    """Pinned digests: the generator refactor must not move ieee30/57/118."""
    import hashlib
    digests = {
        name: hashlib.sha256(write_case(get_case(name)).encode())
        .hexdigest()[:16]
        for name in ("ieee30", "ieee57", "ieee118")
    }
    assert digests == {
        "ieee30": "1369503515ecc9aa",
        "ieee57": "a242383243c495a8",
        "ieee118": "927847056922b189",
    }
