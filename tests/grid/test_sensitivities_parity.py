"""Dense-vs-sparse differential suite for the analysis pipeline.

Every quantity the impact analysis consumes — PTDF, LODF/LCDF columns,
WLS estimates, shift-factor OPF results — is computed on both backends
and required to agree to floating-point noise, on the bundled cases and
on randomized seeded grids.  The rank-1 outage update is additionally
checked against the refactorize-from-scratch oracle, and the bridge /
islanding edge cases must fail identically on both paths.
"""

import random

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.estimation.measurement import MeasurementPlan
from repro.estimation.wls import WlsEstimator
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.grid.cases.synthetic import synthetic_case
from repro.grid.dcpf import net_injections
from repro.grid.sensitivities import (
    compute_ptdf,
    flows_after_exclusion,
    lcdf_column,
    lodf_column,
)
from repro.opf.shift_factor import ShiftFactorOpf, TopologyChange

CASES = ["5bus-study1", "ieee14", "ieee118"]


def _both_factors(grid, line_indices=None):
    return (compute_ptdf(grid, line_indices, backend="dense"),
            compute_ptdf(grid, line_indices, backend="sparse"))


def _seeded_grid(seed):
    """A small randomized case (connected by construction)."""
    case = synthetic_case(f"rand{seed}", 40, 62, 6, seed)
    return case.build_grid()


class TestPtdfParity:
    @pytest.mark.parametrize("name", CASES)
    def test_full_matrix(self, name):
        grid = get_case(name).build_grid()
        dense, sparse = _both_factors(grid)
        assert np.allclose(dense.ptdf, sparse.ptdf, atol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_grids(self, seed):
        grid = _seeded_grid(seed)
        dense, sparse = _both_factors(grid)
        assert np.allclose(dense.ptdf, sparse.ptdf, atol=1e-9)

    @pytest.mark.parametrize("name", CASES)
    def test_rows_and_columns(self, name):
        grid = get_case(name).build_grid()
        dense, sparse = _both_factors(grid)
        rng = random.Random(11)
        for line_index in rng.sample(dense.lines, 3):
            assert np.allclose(dense.row(line_index),
                               sparse.row(line_index), atol=1e-9)
        for bus in rng.sample([b.index for b in grid.buses], 3):
            assert np.allclose(dense.column(bus), sparse.column(bus),
                               atol=1e-9)


class TestLodfLcdfParity:
    @pytest.mark.parametrize("name", CASES)
    def test_lodf_columns(self, name):
        grid = get_case(name).build_grid()
        dense, sparse = _both_factors(grid)
        for outage in dense.lines:
            remaining = [i for i in dense.lines if i != outage]
            if not grid.is_connected(remaining):
                with pytest.raises(ModelError):
                    lodf_column(dense, outage)
                with pytest.raises(ModelError):
                    lodf_column(sparse, outage)
                continue
            assert np.allclose(lodf_column(dense, outage),
                               lodf_column(sparse, outage), atol=1e-8), \
                (name, outage)

    @pytest.mark.parametrize("name", ["5bus-study1", "ieee14"])
    def test_lcdf_columns(self, name):
        grid = get_case(name).build_grid()
        all_lines = [l.index for l in grid.lines]
        rng = random.Random(5)
        for new_line in rng.sample(all_lines, min(4, len(all_lines))):
            base = [i for i in all_lines if i != new_line]
            if not grid.is_connected(base):
                continue
            dense, sparse = _both_factors(grid, base)
            assert np.allclose(lcdf_column(dense, new_line),
                               lcdf_column(sparse, new_line), atol=1e-8)

    def test_bridge_rejected_on_both_backends(self):
        grid = get_case("5bus-study1").build_grid()
        for backend in ("dense", "sparse"):
            factors = compute_ptdf(grid, [1, 3, 4, 5, 6, 7],
                                   backend=backend)
            with pytest.raises(ModelError, match="bridge"):
                lodf_column(factors, 1)


class TestRankOneUpdateOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_outage_update_matches_refactorization(self, seed):
        """Sherman-Morrison outage solves equal a fresh factorization."""
        grid = _seeded_grid(seed + 20)
        factors = compute_ptdf(grid, backend="sparse")
        rng = random.Random(seed)
        candidates = [i for i in factors.lines
                      if grid.is_connected(
                          [j for j in factors.lines if j != i])]
        injections = np.array(
            [rng.uniform(-0.3, 0.3) for _ in range(grid.num_buses)])
        keep = [i for i in range(grid.num_buses)
                if i != grid.reference_bus - 1]
        reduced = injections[keep]
        for outage in rng.sample(candidates, 3):
            updated = factors.outage_update(outage)
            remaining = [i for i in factors.lines if i != outage]
            oracle = compute_ptdf(grid, remaining, backend="sparse")
            assert np.allclose(
                updated.solve(reduced),
                oracle.factorization.solve(reduced), atol=1e-8), outage

    def test_bridge_outage_update_fails(self):
        grid = get_case("5bus-study1").build_grid()
        factors = compute_ptdf(grid, [1, 3, 4, 5, 6, 7],
                               backend="sparse")
        from repro.numerics import SingularMatrixError
        from repro.exceptions import NumericalInstability
        with pytest.raises((SingularMatrixError, NumericalInstability,
                            ModelError)):
            factors.outage_update(1).solve(
                np.zeros(grid.num_buses - 1))


class TestWlsParity:
    @pytest.mark.parametrize("name", CASES)
    def test_estimates_agree(self, name):
        grid = get_case(name).build_grid()
        plan = MeasurementPlan.full(grid)
        rng = np.random.default_rng(13)
        m = len(plan.taken_indices())
        weights = rng.uniform(0.5, 2.0, m)
        z = rng.normal(size=m)
        dense = WlsEstimator(plan, weights=weights, backend="dense")
        sparse = WlsEstimator(plan, weights=weights, backend="sparse")
        ed, es = dense.estimate(z), sparse.estimate(z)
        assert ed.residual_norm == pytest.approx(es.residual_norm,
                                                 abs=1e-9)
        for bus, angle in ed.angles.items():
            assert es.angles[bus] == pytest.approx(angle, abs=1e-9)
        for line, flow in ed.flows.items():
            assert es.flows[line] == pytest.approx(flow, abs=1e-9)
        assert np.allclose(dense.hat_matrix, sparse.hat_matrix,
                           atol=1e-8)


class TestDcOpfParity:
    @pytest.mark.parametrize("name", ["5bus-study1", "ieee14", "ieee118"])
    def test_objective_and_dispatch_agree(self, name):
        grid = get_case(name).build_grid()
        dense = ShiftFactorOpf(grid, backend="dense")
        sparse = ShiftFactorOpf(grid, backend="sparse")
        rd, rs = dense.solve(), sparse.solve()
        assert rd.feasible == rs.feasible
        if rd.feasible:
            assert float(rd.cost) == pytest.approx(
                float(rs.cost), abs=1e-5)
            for bus, value in rd.dispatch.items():
                assert float(rs.dispatch[bus]) == pytest.approx(
                    float(value), abs=1e-5)

    @pytest.mark.parametrize("name", ["5bus-study1", "ieee14"])
    def test_topology_changes_agree(self, name):
        grid = get_case(name).build_grid()
        dense = ShiftFactorOpf(grid, backend="dense")
        sparse = ShiftFactorOpf(grid, backend="sparse")
        for line in list(dense.factors.lines)[:4]:
            change = TopologyChange("exclude", line)
            rd, rs = dense.solve(change=change), \
                sparse.solve(change=change)
            assert rd.feasible == rs.feasible, (name, line)
            if rd.feasible:
                assert float(rd.cost) == pytest.approx(
                    float(rs.cost), abs=1e-5), (name, line)

    @pytest.mark.parametrize("seed", range(2))
    def test_random_grid_objectives_agree(self, seed):
        grid = _seeded_grid(seed + 40)
        dense = ShiftFactorOpf(grid, backend="dense")
        sparse = ShiftFactorOpf(grid, backend="sparse")
        rd, rs = dense.solve(), sparse.solve()
        assert rd.feasible == rs.feasible
        if rd.feasible:
            assert float(rd.cost) == pytest.approx(
                float(rs.cost), abs=1e-5)


class TestExclusionFlowsParity:
    @pytest.mark.parametrize("name", ["5bus-study1", "ieee14"])
    def test_flows_after_exclusion(self, name):
        grid = get_case(name).build_grid()
        dispatch = {b: float(p) for b, p in proportional_dispatch(
            list(grid.generators.values()), grid.total_load()).items()}
        injections = net_injections(grid, dispatch)
        dense, sparse = _both_factors(grid)
        base_d = dense.flows_for_injections(injections)
        base_s = sparse.flows_for_injections(injections)
        assert np.allclose(base_d, base_s, atol=1e-9)
        for outage in dense.lines:
            remaining = [i for i in dense.lines if i != outage]
            if not grid.is_connected(remaining):
                continue
            assert np.allclose(
                flows_after_exclusion(dense, base_d, outage),
                flows_after_exclusion(sparse, base_s, outage),
                atol=1e-8)
