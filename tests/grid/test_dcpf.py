"""Tests for the DC power flow solver."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.grid.dcpf import net_injections, solve_dc_power_flow


@pytest.fixture
def grid():
    return get_case("5bus-study1").build_grid()


def dispatch_for(grid):
    frac = proportional_dispatch(list(grid.generators.values()),
                                 grid.total_load())
    return {bus: float(p) for bus, p in frac.items()}


class TestBasics:
    def test_reference_angle_zero(self, grid):
        result = solve_dc_power_flow(grid, dispatch_for(grid))
        assert result.angles[grid.reference_bus] == 0.0

    def test_flow_equation(self, grid):
        """P_i^L = d_i (theta_f - theta_e) for every line (Eq. 7)."""
        result = solve_dc_power_flow(grid, dispatch_for(grid))
        for line in grid.lines:
            expected = float(line.admittance) * (
                result.angles[line.from_bus] - result.angles[line.to_bus])
            assert result.flow(line.index) == pytest.approx(expected)

    def test_consumption_matches_injections(self, grid):
        """P_j^B = P_j^D - P_j^G at every bus (Eq. 9)."""
        dispatch = dispatch_for(grid)
        result = solve_dc_power_flow(grid, dispatch)
        for bus in grid.buses:
            demand = float(grid.loads[bus.index].existing) \
                if bus.index in grid.loads else 0.0
            gen = dispatch.get(bus.index, 0.0)
            assert result.consumption[bus.index] == \
                pytest.approx(demand - gen, abs=1e-9)

    def test_balanced_case_has_zero_mismatch(self, grid):
        result = solve_dc_power_flow(grid, dispatch_for(grid))
        assert result.slack_mismatch == pytest.approx(0.0, abs=1e-12)

    def test_total_consumption_is_zero(self, grid):
        result = solve_dc_power_flow(grid, dispatch_for(grid))
        assert sum(result.consumption.values()) == pytest.approx(0, abs=1e-9)

    def test_disconnected_topology_rejected(self, grid):
        with pytest.raises(ModelError):
            solve_dc_power_flow(grid, dispatch_for(grid),
                                line_indices=[1, 3, 4, 6])

    def test_dispatch_at_non_generator_rejected(self, grid):
        with pytest.raises(ModelError):
            solve_dc_power_flow(grid, {4: 0.5})

    def test_missing_line_has_zero_flow(self, grid):
        result = solve_dc_power_flow(grid, dispatch_for(grid),
                                     line_indices=[1, 2, 3, 4, 5, 7])
        assert result.flow(6) == 0.0


class TestAgainstLargerCases:
    @pytest.mark.parametrize("name", ["ieee14", "ieee30", "ieee57"])
    def test_kirchhoff_holds(self, name):
        grid = get_case(name).build_grid()
        result = solve_dc_power_flow(grid, dispatch_for(grid))
        # Power balance at every bus: consumption equals in-out flows.
        for bus in grid.buses:
            balance = sum(result.flow(l.index)
                          for l in grid.lines_in(bus.index))
            balance -= sum(result.flow(l.index)
                           for l in grid.lines_out(bus.index))
            assert balance == pytest.approx(result.consumption[bus.index],
                                            abs=1e-8)


class TestSuperposition:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**30))
    def test_linearity(self, seed):
        """DC power flow is linear: flows(a+b) = flows(a) + flows(b)."""
        grid = get_case("ieee14").build_grid()
        rng = random.Random(seed)
        gens = list(grid.generators)
        d1 = {bus: rng.uniform(0, 0.3) for bus in gens}
        d2 = {bus: rng.uniform(0, 0.3) for bus in gens}
        loads1 = {bus: rng.uniform(0, 0.2) for bus in grid.loads}
        loads2 = {bus: rng.uniform(0, 0.2) for bus in grid.loads}
        r1 = solve_dc_power_flow(grid, d1, loads1)
        r2 = solve_dc_power_flow(grid, d2, loads2)
        combined = solve_dc_power_flow(
            grid,
            {b: d1[b] + d2[b] for b in gens},
            {b: loads1[b] + loads2[b] for b in grid.loads})
        for line in grid.lines:
            assert combined.flow(line.index) == pytest.approx(
                r1.flow(line.index) + r2.flow(line.index), abs=1e-9)


class TestNetInjections:
    def test_default_loads(self, grid):
        injections = net_injections(grid)
        assert injections[1] == pytest.approx(-0.21)
        assert injections[0] == 0.0

    def test_explicit_loads_override(self, grid):
        injections = net_injections(grid, loads={2: 0.5})
        assert injections[1] == pytest.approx(-0.5)
        assert injections[2] == 0.0  # bus 3's default not applied
