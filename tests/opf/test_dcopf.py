"""Tests for the DC-OPF solvers: exact vs HiGHS vs shift-factor."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleError, ModelError
from repro.grid.cases import get_case
from repro.grid.dcpf import solve_dc_power_flow
from repro.opf import ShiftFactorOpf, TopologyChange, solve_dc_opf
from repro.opf.cost import total_cost


@pytest.fixture
def grid():
    return get_case("5bus-study1").build_grid()


class TestExactOpf:
    def test_five_bus_baseline(self, grid):
        result = solve_dc_opf(grid, method="exact")
        assert result.feasible
        # Known exact optimum of the paper's 5-bus system with our data.
        assert float(result.cost) == pytest.approx(1474.676655, abs=1e-4)

    def test_dispatch_within_limits(self, grid):
        result = solve_dc_opf(grid, method="exact")
        for bus, power in result.dispatch.items():
            gen = grid.generators[bus]
            assert gen.p_min <= power <= gen.p_max

    def test_flows_within_capacity(self, grid):
        result = solve_dc_opf(grid, method="exact")
        for line_index, flow in result.flows.items():
            assert abs(flow) <= grid.line(line_index).capacity

    def test_balance(self, grid):
        result = solve_dc_opf(grid, method="exact")
        total_gen = sum(result.dispatch.values())
        assert total_gen == grid.total_load()

    def test_cost_matches_dispatch(self, grid):
        result = solve_dc_opf(grid, method="exact")
        assert result.cost == total_cost(list(grid.generators.values()),
                                         result.dispatch)

    def test_binding_lines_reported(self, grid):
        result = solve_dc_opf(grid, method="exact")
        assert result.binding_lines  # the 5-bus optimum is congested
        for line_index in result.binding_lines:
            line = grid.line(line_index)
            assert abs(abs(float(result.flows[line_index]))
                       - float(line.capacity)) < 1e-6

    def test_infeasible_topology(self, grid):
        # Without line 6 and with original loads: infeasible (verified
        # against HiGHS; line 5's limit cannot be honored).
        result = solve_dc_opf(grid, line_indices=[1, 2, 3, 4, 5, 7],
                              method="exact")
        assert not result.feasible
        with pytest.raises(InfeasibleError):
            result.require_feasible()

    def test_disconnected_topology(self, grid):
        result = solve_dc_opf(grid, line_indices=[1, 3, 4, 6])
        assert not result.feasible

    def test_unknown_method(self, grid):
        with pytest.raises(ModelError):
            solve_dc_opf(grid, method="simplex-of-doom")

    def test_loads_override(self, grid):
        light = {bus: load.existing / 2 for bus, load in grid.loads.items()}
        result = solve_dc_opf(grid, loads=light, method="exact")
        base = solve_dc_opf(grid, method="exact")
        assert result.cost < base.cost


class TestSolverAgreement:
    @pytest.mark.parametrize("name", ["5bus-study1", "ieee14"])
    def test_exact_vs_highs(self, name):
        grid = get_case(name).build_grid()
        exact = solve_dc_opf(grid, method="exact")
        highs = solve_dc_opf(grid, method="highs")
        assert exact.feasible == highs.feasible
        assert float(exact.cost) == pytest.approx(float(highs.cost),
                                                  rel=1e-7)

    @pytest.mark.parametrize("name", ["5bus-study1", "ieee14", "ieee30"])
    def test_highs_vs_shift_factor(self, name):
        grid = get_case(name).build_grid()
        highs = solve_dc_opf(grid, method="highs")
        sf = ShiftFactorOpf(grid).solve()
        assert highs.feasible == sf.feasible
        if highs.feasible:
            assert float(sf.cost) == pytest.approx(float(highs.cost),
                                                   rel=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**30))
    def test_agreement_random_loads(self, seed):
        grid = get_case("ieee14").build_grid()
        rng = random.Random(seed)
        loads = {bus: Fraction(str(round(
            float(load.existing) * rng.uniform(0.6, 1.3), 4)))
            for bus, load in grid.loads.items()}
        highs = solve_dc_opf(grid, loads=loads, method="highs")
        sf = ShiftFactorOpf(grid).solve(loads=loads)
        assert highs.feasible == sf.feasible
        if highs.feasible:
            assert float(sf.cost) == pytest.approx(float(highs.cost),
                                                   rel=1e-6)


class TestShiftFactorTopologyChanges:
    def test_exclusion_matches_angle_formulation(self):
        grid = get_case("ieee14").build_grid()
        sf = ShiftFactorOpf(grid)
        all_lines = [l.index for l in grid.lines]
        for out in (3, 5, 11):
            remaining = [i for i in all_lines if i != out]
            if not grid.is_connected(remaining):
                continue
            angle = solve_dc_opf(grid, line_indices=remaining,
                                 method="highs")
            fast = sf.solve(change=TopologyChange("exclude", out))
            assert angle.feasible == fast.feasible
            if angle.feasible:
                assert float(fast.cost) == pytest.approx(
                    float(angle.cost), rel=1e-6)

    def test_inclusion_matches_angle_formulation(self):
        grid = get_case("ieee14").build_grid()
        all_lines = [l.index for l in grid.lines]
        new_line = 10
        base_lines = [i for i in all_lines if i != new_line]
        sf = ShiftFactorOpf(grid, base_lines)
        angle = solve_dc_opf(grid, line_indices=all_lines, method="highs")
        fast = sf.solve(change=TopologyChange("include", new_line))
        assert angle.feasible == fast.feasible
        if angle.feasible:
            assert float(fast.cost) == pytest.approx(float(angle.cost),
                                                     rel=1e-6)

    def test_bridge_exclusion_infeasible(self, grid):
        # Excluding line 1 in a base topology without line 2 disconnects
        # bus 1.
        sf = ShiftFactorOpf(grid, [1, 3, 4, 5, 6, 7])
        result = sf.solve(change=TopologyChange("exclude", 1))
        assert not result.feasible

    def test_unknown_change_kind(self):
        with pytest.raises(ModelError):
            TopologyChange("teleport", 3)

    def test_include_existing_line_rejected(self, grid):
        sf = ShiftFactorOpf(grid)
        with pytest.raises(ModelError):
            sf.solve(change=TopologyChange("include", 3))
