"""Tests for N-1 contingency analysis."""

import pytest

from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.opf import solve_dc_opf
from repro.opf.contingency import (
    exact_outage_flows,
    screen_contingencies,
    security_margin,
)


@pytest.fixture
def grid():
    return get_case("ieee14").build_grid()


def opf_dispatch(grid):
    result = solve_dc_opf(grid, method="highs").require_feasible()
    return {bus: float(v) for bus, v in result.dispatch.items()}


class TestScreening:
    def test_lodf_screening_matches_exact(self, grid):
        """Every screened post-outage flow equals the exact recompute."""
        dispatch = opf_dispatch(grid)
        report = screen_contingencies(grid, dispatch)
        # Cross-check a handful of outages exactly.
        from repro.grid.sensitivities import (compute_ptdf,
                                              flows_after_exclusion)
        from repro.grid.dcpf import net_injections
        active = [l.index for l in grid.lines]
        factors = compute_ptdf(grid, active)
        base = factors.flows_for_injections(net_injections(grid, dispatch))
        for outage in (3, 5, 11):
            remaining = [i for i in active if i != outage]
            if not grid.is_connected(remaining):
                continue
            screened = flows_after_exclusion(factors, base, outage)
            exact = exact_outage_flows(grid, dispatch, outage)
            for row, line_index in enumerate(factors.lines):
                if line_index == outage:
                    continue
                assert screened[row] == pytest.approx(
                    exact[line_index], abs=1e-7)

    def test_overload_detection(self, grid):
        """Shrinking a line's capacity below its post-outage flow makes
        the report insecure on that pair."""
        from dataclasses import replace
        from repro.grid.network import Grid
        dispatch = opf_dispatch(grid)
        exact = exact_outage_flows(grid, dispatch, 3)
        # Find a line whose post-outage-3 flow is nonzero.
        target, flow = max(exact.items(), key=lambda kv: abs(kv[1]))
        squeezed_lines = [
            replace(l, capacity=abs(flow) * 0.5) if l.index == target
            else l for l in grid.lines
        ]
        squeezed = Grid(grid.buses, squeezed_lines,
                        list(grid.generators.values()),
                        list(grid.loads.values()))
        report = screen_contingencies(squeezed, dispatch, outages=[3])
        assert not report.secure
        pair = {(o.outaged_line, o.overloaded_line)
                for o in report.overloads}
        assert (3, target) in pair
        assert report.worst().loading_percent > 100

    def test_islanding_outage_reported(self):
        grid = get_case("5bus-study1").build_grid()
        # In a topology without line 2, line 1 is the only tie to bus 1.
        modified = grid.with_line_statuses({2: False})
        dispatch = {b: float(p) for b, p in proportional_dispatch(
            list(modified.generators.values()),
            modified.total_load()).items()}
        report = screen_contingencies(modified, dispatch, outages=[1])
        assert 1 in report.islanding_outages
        assert not report.secure

    def test_unknown_outage_rejected(self, grid):
        with pytest.raises(ModelError):
            screen_contingencies(grid, opf_dispatch(grid), outages=[999])


class TestSecurityMargin:
    def test_margin_sign_matches_report(self, grid):
        dispatch = opf_dispatch(grid)
        report = screen_contingencies(grid, dispatch)
        margin = security_margin(grid, dispatch)
        if report.secure:
            assert margin >= 0
        else:
            assert margin < 0

    def test_lighter_load_has_larger_margin(self, grid):
        dispatch = opf_dispatch(grid)
        light_loads = {bus: float(load.existing) * 0.5
                       for bus, load in grid.loads.items()}
        light_dispatch = {bus: p * 0.5 for bus, p in dispatch.items()}
        assert security_margin(grid, light_dispatch, light_loads) >= \
            security_margin(grid, dispatch)
