"""Tests for cost functions."""

from fractions import Fraction

import pytest

from repro.exceptions import ModelError
from repro.grid.components import Generator
from repro.opf.cost import CostSegment, PiecewiseLinearCost, total_cost


class TestSegments:
    def test_single_segment_matches_generator(self):
        gen = Generator(1, "0.8", "0.1", 60, 1800)
        curve = PiecewiseLinearCost.single_segment(gen)
        assert curve.p_min == Fraction(1, 10)
        assert curve.p_max == Fraction(4, 5)
        assert curve.evaluate("0.5") == gen.cost("0.5")
        assert curve.evaluate("0.1") == gen.cost("0.1")

    def test_multi_segment_evaluation(self):
        curve = PiecewiseLinearCost(100, [
            CostSegment(0, 1, 10),
            CostSegment(1, 2, 20),
            CostSegment(2, 3, 40),
        ])
        assert curve.evaluate(0) == 100
        assert curve.evaluate(1) == 110
        assert curve.evaluate("1.5") == 120
        assert curve.evaluate(3) == 170

    def test_marginal_cost(self):
        curve = PiecewiseLinearCost(0, [
            CostSegment(0, 1, 10),
            CostSegment(1, 2, 20),
        ])
        assert curve.marginal_cost("0.5") == 10
        assert curve.marginal_cost("1.5") == 20

    def test_out_of_range_rejected(self):
        curve = PiecewiseLinearCost(0, [CostSegment(0, 1, 10)])
        with pytest.raises(ModelError):
            curve.evaluate(2)

    def test_non_convex_rejected(self):
        with pytest.raises(ModelError):
            PiecewiseLinearCost(0, [
                CostSegment(0, 1, 20),
                CostSegment(1, 2, 10),
            ])

    def test_gap_rejected(self):
        with pytest.raises(ModelError):
            PiecewiseLinearCost(0, [
                CostSegment(0, 1, 10),
                CostSegment(2, 3, 20),
            ])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            PiecewiseLinearCost(0, [])


class TestTotalCost:
    def test_sum(self):
        gens = [Generator(1, 1, 0, 10, 100), Generator(2, 1, 0, 20, 200)]
        dispatch = {1: Fraction(1, 2), 2: Fraction(1, 4)}
        assert total_cost(gens, dispatch) == 10 + 50 + 20 + 50

    def test_missing_dispatch_counts_alpha(self):
        gens = [Generator(1, 1, 0, 10, 100)]
        assert total_cost(gens, {}) == 10
