"""Differential test for the unified binding-line tolerance: the exact
rational simplex and the HiGHS path must classify binding constraints
with the same absolute slack threshold (satellite of the
numerical-integrity hardening)."""

import inspect

import pytest

from repro.grid.cases import get_case
from repro.opf.dcopf import solve_dc_opf


CASES = ["5bus-study1", "5bus-study2", "ieee14"]


class TestUnifiedDefault:
    def test_single_shared_default(self):
        # The regression being pinned: _solve_highs used to widen the
        # tolerance by 10x, so the two paths disagreed about binding
        # sets near the threshold.
        signature = inspect.signature(solve_dc_opf)
        assert signature.parameters["binding_tolerance"].default == 1e-6

    @pytest.mark.parametrize("name", CASES)
    def test_exact_and_highs_agree_on_binding_sets(self, name):
        grid = get_case(name).build_grid()
        exact = solve_dc_opf(grid, method="exact")
        highs = solve_dc_opf(grid, method="highs")
        assert exact.feasible and highs.feasible
        assert sorted(exact.binding_lines) == sorted(highs.binding_lines)

    @pytest.mark.parametrize("name", CASES)
    def test_custom_tolerance_honored_by_both_paths(self, name):
        # A tolerance wider than every line's slack makes every active
        # line binding, on either path.
        grid = get_case(name).build_grid()
        wide = float(max(line.capacity for line in grid.lines)) + 1.0
        exact = solve_dc_opf(grid, method="exact",
                             binding_tolerance=wide)
        highs = solve_dc_opf(grid, method="highs",
                             binding_tolerance=wide)
        active = [line.index for line in grid.lines if line.in_service]
        assert sorted(exact.binding_lines) == active
        assert sorted(highs.binding_lines) == active

    def test_zero_tolerance_restricts_to_exact_hits(self):
        grid = get_case("5bus-study1").build_grid()
        strict = solve_dc_opf(grid, method="exact", binding_tolerance=0)
        loose = solve_dc_opf(grid, method="exact", binding_tolerance=1e-6)
        assert set(strict.binding_lines) <= set(loose.binding_lines)
