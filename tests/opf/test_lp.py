"""Tests for the exact LP facade, fuzzed against scipy."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.exceptions import SolverError
from repro.opf.lp import LinearProgram, LpStatus


class TestBasics:
    def test_simple_minimum(self):
        lp = LinearProgram()
        x = lp.add_variable(0, 10)
        y = lp.add_variable(0, 10)
        lp.add_constraint({x: 1, y: 1}, lower=4)
        lp.set_objective({x: 3, y: 1})
        result = lp.solve()
        assert result.is_optimal
        assert result.objective == 4  # x=0, y=4
        assert result.values[x] == 0 and result.values[y] == 4

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable(0, None)
        y = lp.add_variable(0, None)
        lp.add_equality({x: 1, y: 1}, 5)
        lp.set_objective({x: 2, y: 3})
        result = lp.solve()
        assert result.objective == 10  # all on x

    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.add_variable(0, 1)
        lp.add_constraint({x: 1}, lower=2)
        assert lp.solve().status is LpStatus.INFEASIBLE

    def test_contradictory_variable_bounds_infeasible(self):
        lp = LinearProgram()
        lp.add_variable(5, 3)
        assert lp.solve().status is LpStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.add_variable(None, 0)
        lp.set_objective({x: 1})
        assert lp.solve().status is LpStatus.UNBOUNDED

    def test_feasibility_only(self):
        lp = LinearProgram()
        x = lp.add_variable(0, 5)
        lp.add_constraint({x: 2}, lower=4)
        result = lp.solve()
        assert result.is_optimal
        assert result.objective == 0  # no objective: constant 0

    def test_objective_constant(self):
        lp = LinearProgram()
        x = lp.add_variable(1, 1)
        lp.set_objective({x: 1}, constant=10)
        assert lp.solve().objective == 11

    def test_empty_constraint_rules(self):
        lp = LinearProgram()
        lp.add_constraint({}, upper=5)  # 0 <= 5: fine
        x = lp.add_variable(0, 1)
        lp.set_objective({x: 1})
        assert lp.solve().is_optimal
        lp2 = LinearProgram()
        lp2.add_constraint({}, lower=5)  # 0 >= 5: infeasible
        assert lp2.solve().status is LpStatus.INFEASIBLE

    def test_constraint_without_bounds_rejected(self):
        lp = LinearProgram()
        x = lp.add_variable(0, 1)
        with pytest.raises(SolverError):
            lp.add_constraint({x: 1})

    def test_exact_fractions(self):
        lp = LinearProgram()
        x = lp.add_variable(0, None)
        lp.add_constraint({x: 3}, lower=Fraction(1, 7))
        lp.set_objective({x: 1})
        assert lp.solve().objective == Fraction(1, 21)


class TestFuzzAgainstScipy:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**30))
    def test_random_lps(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        m = rng.randint(1, 5)
        A = [[rng.randint(-4, 4) for _ in range(n)] for _ in range(m)]
        b = [rng.randint(-6, 14) for _ in range(m)]
        c = [rng.randint(-5, 5) for _ in range(n)]
        reference = linprog(c, A_ub=A, b_ub=b, bounds=[(0, 7)] * n,
                            method="highs")

        lp = LinearProgram()
        xs = [lp.add_variable(0, 7) for _ in range(n)]
        for row, bound in zip(A, b):
            coeffs = {xs[j]: row[j] for j in range(n)}
            lp.add_constraint(coeffs, upper=bound)
        lp.set_objective({xs[j]: c[j] for j in range(n)})
        result = lp.solve()

        assert result.is_optimal == reference.success
        if reference.success:
            assert abs(float(result.objective) - reference.fun) < 1e-6
            # Exact solution satisfies every constraint exactly.
            for row, bound in zip(A, b):
                lhs = sum(Fraction(row[j]) * result.values[xs[j]]
                          for j in range(n))
                assert lhs <= bound
