"""Inclusion-attack coverage: the paper's second attack kind.

None of the stock cases has an open line, so these tests build a variant
of the 5-bus system where line 6 is physically open (and its status
unsecured), making it an inclusion candidate, and drive both the SMT
encoding and the fast analyzer through the q_i path.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.attacks.model import AttackerModel
from repro.core.encoding import AttackEncodingConfig, AttackModelEncoding
from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.grid.caseio import CaseDefinition
from repro.grid.cases import get_case
from repro.opf import solve_dc_opf


@pytest.fixture(scope="module")
def open_line_case():
    """5-bus study-1 variant: line 6 is open but spoofable as closed."""
    base = get_case("5bus-study1")
    specs = []
    for spec in base.line_specs:
        if spec.index == 6:
            specs.append(replace(spec, in_true_topology=False))
        elif spec.index == 5:
            # Widen line 5 so the attack-free (line-6-less) OPF converges.
            specs.append(replace(spec, capacity=Fraction(3, 10)))
        else:
            specs.append(spec)
    return CaseDefinition(
        "5bus-line6-open", specs, base.measurement_specs,
        base.bus_types, base.generators, base.loads,
        base.resource_measurements, base.resource_buses,
        base.base_cost, Fraction(1))


class TestSetup:
    def test_attack_free_opf_feasible(self, open_line_case):
        grid = open_line_case.build_grid()
        assert not grid.line(6).in_service
        result = solve_dc_opf(grid, method="exact")
        assert result.feasible

    def test_line6_is_an_inclusion_candidate(self, open_line_case):
        attacker = AttackerModel.from_case(open_line_case)
        assert attacker.inclusion_candidates() == [6]
        assert attacker.exclusion_candidates() == []


class TestEncodingInclusionPath:
    def test_solver_finds_inclusion_attack(self, open_line_case):
        encoding = AttackModelEncoding(open_line_case,
                                       AttackEncodingConfig())
        solution = encoding.solve()
        assert solution is not None
        assert solution.included == [6]
        assert solution.excluded == []
        # The believed topology gains the phantom line.
        believed = solution.believed_topology(encoding.grid)
        assert 6 in believed

    def test_included_line_flow_measurements_altered(self, open_line_case):
        """A phantom line must show a (nonzero) flow: its measurements,
        when taken, are altered (Eqs. 14, 17)."""
        encoding = AttackModelEncoding(open_line_case,
                                       AttackEncodingConfig())
        solution = encoding.solve()
        l = encoding.grid.num_lines
        taken_flow = [m for m in (6, l + 6)
                      if encoding.plan.is_taken(m)]
        if solution.altered_measurements:
            # Any altered flow measurement of line 6 is among the taken.
            for m in solution.altered_measurements:
                if m in (6, l + 6):
                    assert m in taken_flow

    def test_inclusion_blocked_when_status_secured(self, open_line_case):
        specs = [replace(s, status_secured=True) if s.index == 6 else s
                 for s in open_line_case.line_specs]
        sealed = CaseDefinition(
            "sealed-open", specs, open_line_case.measurement_specs,
            open_line_case.bus_types, open_line_case.generators,
            open_line_case.loads, open_line_case.resource_measurements,
            open_line_case.resource_buses, open_line_case.base_cost,
            open_line_case.min_increase_percent)
        encoding = AttackModelEncoding(sealed, AttackEncodingConfig())
        assert encoding.solve() is None


class TestFastAnalyzerInclusionPath:
    def test_candidate_enumerated(self, open_line_case):
        analyzer = FastImpactAnalyzer(open_line_case)
        analyzer.analyze(FastQuery(target_increase_percent=Fraction(1)))
        kinds = {(e.kind, e.line_index) for e in analyzer.evaluations}
        assert ("include", 6) in kinds

    def test_believed_costs_evaluated_with_lcdf(self, open_line_case):
        analyzer = FastImpactAnalyzer(open_line_case)
        report = analyzer.analyze(
            FastQuery(target_increase_percent=Fraction(1, 100)))
        evaluation = analyzer.evaluations[0]
        # Whether or not an impact was found, the LCDF evaluation must
        # have produced a believed cost (feasible) or a concrete reason.
        assert evaluation.feasible or evaluation.reason
