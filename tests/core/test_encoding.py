"""Tests for the SMT encodings: attack model internals and OPF model."""

from fractions import Fraction

import pytest

from repro.core.encoding import (
    AttackEncodingConfig,
    AttackModelEncoding,
    OpfModelEncoding,
)
from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.opf import solve_dc_opf


@pytest.fixture(scope="module")
def case1():
    return get_case("5bus-study1")


@pytest.fixture(scope="module")
def case2():
    return get_case("5bus-study2")


class TestAttackModel:
    def test_solution_is_consistent(self, case1):
        encoding = AttackModelEncoding(case1)
        solution = encoding.solve()
        assert solution is not None
        # The topology attack attributes hold (Eqs. 11-12): only line 6 is
        # excludable in study 1.
        assert solution.excluded == [6]
        assert solution.included == []
        # Altered measurements are taken, accessible and unsecured
        # (Eqs. 18, 20).
        plan = encoding.plan
        for m in solution.altered_measurements:
            assert plan.is_taken(m)
            assert plan.is_alterable(m) and not plan.is_secured(m)
        # Resource limits (Eq. 22).
        assert len(solution.altered_measurements) <= \
            case1.resource_measurements
        assert len(solution.compromised_buses) <= case1.resource_buses

    def test_operating_point_is_physical(self, case1):
        encoding = AttackModelEncoding(case1)
        solution = encoding.solve()
        grid = encoding.grid
        # Dispatch within limits, flows within capacities (Eqs. 5-6).
        for bus, power in solution.operating_dispatch.items():
            gen = grid.generators[bus]
            assert gen.p_min <= power <= gen.p_max
        for line_index, flow in solution.operating_flows.items():
            assert abs(flow) <= grid.line(line_index).capacity
        # Power balance: total generation equals total load.
        assert sum(solution.operating_dispatch.values()) == \
            grid.total_load()

    def test_believed_loads_conserve_total(self, case1):
        encoding = AttackModelEncoding(case1)
        solution = encoding.solve()
        assert sum(solution.believed_loads.values()) == \
            encoding.grid.total_load()

    def test_blocking_excludes_vector(self, case1):
        encoding = AttackModelEncoding(case1)
        first = encoding.solve()
        encoding.block(first, precision=2)
        second = encoding.solve()
        if second is not None:
            same_topology = (second.excluded == first.excluded
                             and second.included == first.included)
            if same_topology:
                moved = any(
                    abs(second.believed_loads[b] - first.believed_loads[b])
                    > Fraction(1, 200)
                    for b in first.believed_loads)
                assert moved

    def test_block_structure_removes_topology_choice(self, case1):
        encoding = AttackModelEncoding(case1)
        first = encoding.solve()
        encoding.block_structure(first)
        second = encoding.solve()
        # Study 1 has a single excludable line, so nothing remains.
        assert second is None

    def test_forbid_topology_attack(self, case2):
        config = AttackEncodingConfig(include_state_infection=True,
                                      require_topology_attack=False,
                                      forbid_topology_attack=True,
                                      require_state_infection=True)
        encoding = AttackModelEncoding(case2, config)
        solution = encoding.solve()
        assert solution is not None
        assert solution.excluded == [] and solution.included == []
        assert solution.infected_states

    def test_contradictory_config_rejected(self, case1):
        config = AttackEncodingConfig(require_topology_attack=True,
                                      forbid_topology_attack=True)
        with pytest.raises(ModelError):
            AttackModelEncoding(case1, config)

    def test_require_state_without_include_rejected(self, case1):
        config = AttackEncodingConfig(include_state_infection=False,
                                      require_state_infection=True)
        with pytest.raises(ModelError):
            AttackModelEncoding(case1, config)

    def test_secured_statuses_block_all_attacks(self, case1):
        """With every line status secured, no topology attack exists."""
        from dataclasses import replace
        specs = [replace(s, status_secured=True)
                 for s in case1.line_specs]
        from repro.grid.caseio import CaseDefinition
        sealed = CaseDefinition(
            "sealed", specs, case1.measurement_specs, case1.bus_types,
            case1.generators, case1.loads, case1.resource_measurements,
            case1.resource_buses, case1.base_cost,
            case1.min_increase_percent)
        encoding = AttackModelEncoding(sealed)
        assert encoding.solve() is None

    def test_zero_measurement_budget_blocks_attack(self, case1):
        from repro.grid.caseio import CaseDefinition
        starved = CaseDefinition(
            "starved", case1.line_specs, case1.measurement_specs,
            case1.bus_types, case1.generators, case1.loads,
            0, case1.resource_buses, case1.base_cost,
            case1.min_increase_percent)
        encoding = AttackModelEncoding(starved)
        assert encoding.solve() is None

    def test_one_bus_budget_blocks_study1(self, case1):
        """Line 6's required alterations span buses 3 and 4 (> 1)."""
        from repro.grid.caseio import CaseDefinition
        limited = CaseDefinition(
            "limited", case1.line_specs, case1.measurement_specs,
            case1.bus_types, case1.generators, case1.loads,
            case1.resource_measurements, 1, case1.base_cost,
            case1.min_increase_percent)
        encoding = AttackModelEncoding(limited)
        assert encoding.solve() is None


class TestOpfModel:
    def test_feasible_at_loose_threshold(self, case1):
        grid = case1.build_grid()
        loads = {b: l.existing for b, l in grid.loads.items()}
        opf = OpfModelEncoding(grid, [l.index for l in grid.lines], loads)
        assert opf.check(Fraction(100000))
        assert opf.check(None)

    def test_unsat_below_optimum(self, case1):
        grid = case1.build_grid()
        loads = {b: l.existing for b, l in grid.loads.items()}
        opf = OpfModelEncoding(grid, [l.index for l in grid.lines], loads)
        exact = solve_dc_opf(grid, method="exact")
        assert not opf.check(exact.cost - 1)
        assert opf.check(exact.cost)

    def test_minimum_cost_matches_lp(self, case1):
        grid = case1.build_grid()
        loads = {b: l.existing for b, l in grid.loads.items()}
        opf = OpfModelEncoding(grid, [l.index for l in grid.lines], loads)
        exact = solve_dc_opf(grid, method="exact")
        assert opf.minimum_cost() == exact.cost

    def test_threshold_tightness_increases_work(self, case1):
        """Paper Fig. 5(a): tighter cost constraints are harder."""
        grid = case1.build_grid()
        loads = {b: l.existing for b, l in grid.loads.items()}
        exact = solve_dc_opf(grid, method="exact")
        tight = OpfModelEncoding(grid, [l.index for l in grid.lines],
                                 loads)
        tight.check(exact.cost * Fraction(1001, 1000))
        tight_conflicts = tight.solver.stats.conflicts
        loose = OpfModelEncoding(grid, [l.index for l in grid.lines],
                                 loads)
        loose.check(exact.cost * 2)
        loose_conflicts = loose.solver.stats.conflicts
        # Not a strict theorem, but holds robustly on this system.
        assert tight_conflicts >= loose_conflicts

    def test_infeasible_believed_system(self, case1):
        grid = case1.build_grid()
        loads = {b: l.existing for b, l in grid.loads.items()}
        # Without line 6 the original loads are unservable.
        opf = OpfModelEncoding(grid, [1, 2, 3, 4, 5, 7], loads)
        assert not opf.check(None)
        assert opf.minimum_cost() is None
