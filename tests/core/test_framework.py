"""Tests reproducing the paper's case studies through the full framework.

These are the headline reproduction tests: the exact attack vectors the
paper reports for Tables II and III must come out of our SMT pipeline.
"""

from fractions import Fraction

import pytest

from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.exceptions import ModelError
from repro.grid.cases import get_case


@pytest.fixture(scope="module")
def analyzer1():
    return ImpactAnalyzer(get_case("5bus-study1"))


@pytest.fixture(scope="module")
def analyzer2():
    return ImpactAnalyzer(get_case("5bus-study2"))


class TestBaseline:
    def test_base_cost(self, analyzer1):
        assert float(analyzer1.base_cost) == pytest.approx(1474.676655,
                                                           abs=1e-4)

    def test_threshold(self, analyzer1):
        threshold = analyzer1.threshold_for(Fraction(3))
        assert threshold == analyzer1.base_cost * Fraction(103, 100)


class TestCaseStudy1:
    """Paper Section III-G, case study 1 (Table II)."""

    def test_reproduces_paper_attack_vector(self, analyzer1):
        report = analyzer1.analyze(ImpactQuery(verify_with_smt_opf=True))
        assert report.satisfiable
        attack = report.attack
        assert attack.excluded == [6]
        assert attack.included == []
        assert attack.infected_states == []
        assert attack.altered_measurements == [6, 13, 17, 18]
        assert attack.compromised_buses == [3, 4]
        # "around 4%" more than the attack-free optimum.
        assert 4 < float(report.achieved_increase_percent) < 5
        assert report.smt_opf_unsat_confirmed

    def test_unsat_above_achievable(self, analyzer1):
        report = analyzer1.analyze(
            ImpactQuery(target_increase_percent=Fraction(5)))
        assert not report.satisfiable

    def test_believed_loads_within_bounds(self, analyzer1):
        report = analyzer1.analyze(ImpactQuery())
        grid = analyzer1.grid
        for bus, value in report.attack.believed_loads.items():
            load = grid.loads[bus]
            assert load.p_min <= value <= load.p_max

    def test_attack_respects_attacker_model(self, analyzer1):
        from repro.attacks.model import AttackerModel
        report = analyzer1.analyze(ImpactQuery())
        attacker = AttackerModel.from_case(analyzer1.case, analyzer1.grid)
        altered = set(report.attack.altered_measurements)
        assert attacker.check_alteration_set(altered) == []


class TestCaseStudy2:
    """Paper Section III-G, case study 2 (Table III)."""

    def test_reproduces_paper_attack_vector(self, analyzer2):
        report = analyzer2.analyze(
            ImpactQuery(with_state_infection=True,
                        verify_with_smt_opf=True))
        assert report.satisfiable
        attack = report.attack
        assert attack.excluded == [6]
        assert attack.infected_states == [3]
        assert attack.altered_measurements == [3, 6, 10, 13, 16, 18]
        assert attack.compromised_buses == [2, 3, 4]
        # Paper: loads of two buses move to 0.29 and 0.10.
        assert float(attack.believed_loads[2]) == pytest.approx(0.29,
                                                                abs=0.01)
        assert float(attack.believed_loads[4]) == pytest.approx(0.10,
                                                                abs=0.01)
        assert float(report.achieved_increase_percent) > 6
        assert report.smt_opf_unsat_confirmed

    def test_unsat_above_ceiling(self, analyzer2):
        report = analyzer2.analyze(
            ImpactQuery(target_increase_percent=Fraction(11),
                        with_state_infection=True))
        assert not report.satisfiable

    def test_state_attack_beats_pure_topology(self, analyzer2):
        """The combined attack reaches strictly higher impact."""
        pure, _ = analyzer2.max_achievable_increase(
            with_state_infection=False, percent_grid=range(1, 12))
        combined, _ = analyzer2.max_achievable_increase(
            with_state_infection=True, percent_grid=range(1, 12))
        assert combined > pure

    def test_ufdi_alone_cannot_reach_target(self, analyzer2):
        """Paper: without topology attacks the 6% objective fails."""
        report = analyzer2.analyze(
            ImpactQuery(target_increase_percent=Fraction(6),
                        with_state_infection=True,
                        allow_topology_attack=False))
        assert not report.satisfiable

    def test_ufdi_alone_some_impact_exists(self, analyzer2):
        report = analyzer2.analyze(
            ImpactQuery(target_increase_percent=Fraction(1),
                        with_state_infection=True,
                        allow_topology_attack=False))
        assert report.satisfiable
        assert report.attack.excluded == []
        assert report.attack.included == []
        assert report.attack.infected_states


class TestQueryValidation:
    def test_no_attack_kind_rejected(self, analyzer1):
        with pytest.raises(ModelError):
            analyzer1.analyze(ImpactQuery(allow_topology_attack=False,
                                          with_state_infection=False))


class TestReportRendering:
    def test_render_sat(self, analyzer1):
        from repro.estimation.measurement import MeasurementPlan
        report = analyzer1.analyze(ImpactQuery())
        text = report.render(MeasurementPlan.from_case(analyzer1.case))
        assert "verdict                  : sat" in text
        assert "exclusion attack on line(s) [6]" in text
        assert "m6: forward flow of line 6" in text

    def test_render_unsat(self, analyzer1):
        report = analyzer1.analyze(
            ImpactQuery(target_increase_percent=Fraction(20)))
        text = report.render()
        assert "unsat" in text
