"""Budget-exhausted analyses degrade to partial reports, not errors."""

from fractions import Fraction

import pytest

from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.exceptions import BudgetExhausted
from repro.grid.cases import get_case
from repro.smt import SolverBudget


class _ScriptedBudget:
    """Duck-typed budget whose loop-top check trips after N probes.

    Lets tests pick exactly *when* in the analyzer loop exhaustion hits,
    independent of solver event counts.
    """

    def __init__(self, allowed_checks: int) -> None:
        self.allowed_checks = allowed_checks
        self.checks = 0
        self.exhausted_reason = None

    def start(self):
        return self

    def on_conflict(self):
        pass

    def on_decision(self):
        pass

    def on_pivot(self):
        pass

    def check_wall(self):
        self.checks += 1
        if self.checks > self.allowed_checks:
            self.exhausted_reason = "scripted budget exhausted"
            raise BudgetExhausted(self.exhausted_reason)

    def exhausted(self):
        try:
            self.check_wall()
        except BudgetExhausted:
            return True
        return False


class TestSmtAnalyzerPartialReports:
    def test_instant_exhaustion_yields_partial_report(self):
        analyzer = ImpactAnalyzer(get_case("5bus-study1"))
        budget = SolverBudget(max_decisions=1)
        report = analyzer.analyze(ImpactQuery(budget=budget))
        assert report.status == "budget_exhausted"
        assert report.is_partial
        assert report.satisfiable is False
        assert "decision budget" in report.budget_reason
        assert report.candidates_examined == 0
        assert report.attack is None
        # Partial statistics still cover the truncated search.
        assert report.trace is not None
        assert report.trace.smt["solve_calls"] >= 1
        assert report.trace.smt["decisions"] >= 1

    def test_partial_report_carries_best_attack_so_far(self):
        # Let one candidate through, then exhaust at the next loop-top
        # check: the report must carry the best sub-threshold attack.
        analyzer = ImpactAnalyzer(get_case("5bus-study1"))
        query = ImpactQuery(target_increase_percent=Fraction(50),
                            with_state_infection=True,
                            extremize_structures=False,
                            budget=_ScriptedBudget(allowed_checks=1))
        report = analyzer.analyze(query)
        assert report.status == "budget_exhausted"
        assert report.satisfiable is False
        assert report.budget_reason == "scripted budget exhausted"
        assert report.candidates_examined >= 1
        assert report.attack is not None
        assert report.believed_min_cost is not None
        assert report.believed_min_cost < report.threshold

    def test_generous_budget_reaches_complete_verdict(self):
        analyzer = ImpactAnalyzer(get_case("5bus-study1"))
        budget = SolverBudget(wall_seconds=120.0, max_conflicts=10 ** 9)
        report = analyzer.analyze(ImpactQuery(budget=budget))
        assert report.status == "complete"
        assert not report.is_partial
        assert report.budget_reason is None
        assert report.satisfiable is True

    def test_budgeted_verdict_matches_unbudgeted(self):
        case = get_case("5bus-study1")
        plain = ImpactAnalyzer(case).analyze(ImpactQuery())
        budgeted = ImpactAnalyzer(case).analyze(ImpactQuery(
            budget=SolverBudget(wall_seconds=120.0)))
        assert budgeted.satisfiable == plain.satisfiable
        assert budgeted.believed_min_cost == plain.believed_min_cost

    def test_render_mentions_budget(self):
        analyzer = ImpactAnalyzer(get_case("5bus-study1"))
        report = analyzer.analyze(ImpactQuery(
            budget=SolverBudget(max_decisions=1)))
        text = report.render()
        assert "unknown (budget exhausted)" in text
        assert "decision budget" in text


class TestFastAnalyzerPartialReports:
    def test_instant_exhaustion_yields_partial_report(self):
        analyzer = FastImpactAnalyzer(get_case("ieee14"))
        budget = SolverBudget(wall_seconds=0.0)
        report = analyzer.analyze(FastQuery(budget=budget))
        assert report.status == "budget_exhausted"
        assert "wall-clock" in report.budget_reason
        assert report.candidates_examined == 0
        assert report.satisfiable is False

    def test_mid_run_exhaustion_keeps_examined_candidates(self):
        analyzer = FastImpactAnalyzer(get_case("ieee14"))
        query = FastQuery(budget=_ScriptedBudget(allowed_checks=3))
        report = analyzer.analyze(query)
        assert report.status == "budget_exhausted"
        assert report.candidates_examined == 3
        assert report.budget_reason == "scripted budget exhausted"

    def test_generous_budget_complete(self):
        analyzer = FastImpactAnalyzer(get_case("ieee14"))
        plain = analyzer.analyze(FastQuery())
        budgeted = FastImpactAnalyzer(get_case("ieee14")).analyze(
            FastQuery(budget=SolverBudget(wall_seconds=120.0)))
        assert budgeted.status == "complete"
        assert budgeted.satisfiable == plain.satisfiable
        assert budgeted.candidates_examined == plain.candidates_examined


class TestEncodingUnknownSurfacing:
    def test_encoding_solve_raises_not_misreports(self):
        from repro.core.encoding import AttackModelEncoding
        encoding = AttackModelEncoding(get_case("5bus-study1"))
        encoding.solver.set_budget(SolverBudget(max_decisions=1).start())
        # UNKNOWN must never be conflated with "no attack exists".
        with pytest.raises(BudgetExhausted):
            encoding.solve()
