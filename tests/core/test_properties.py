"""Property-based tests of the cross-module invariants the paper's
framework rests on.

These are the load-bearing facts of the whole analysis:

1. any crafted topology-poisoning attack (random line, random operating
   point, random state shift) leaves the WLS residual unchanged —
   *stealthiness by construction*;
2. believed-load changes always sum to zero — undetected attacks cannot
   change the total system loading (paper Section II-F);
3. the believed system of a pure exclusion attack always admits the
   physical operating point, hence its optimal cost never exceeds the
   current operating cost — the containment argument behind the
   framework's pure-topology pruning;
4. shrinking line capacities never decreases the OPF optimum
   (monotonicity of the impact mechanism).
"""

import random
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import apply_to_readings, craft_topology_attack
from repro.estimation import (
    MeasurementPlan,
    TelemetrySimulator,
    WlsEstimator,
)
from repro.grid.cases import get_case
from repro.grid.dcpf import solve_dc_power_flow
from repro.opf import solve_dc_opf
from repro.opf.cost import total_cost


def random_operating_point(grid, rng):
    """A random dispatch meeting the total load (ignores line limits —
    stealthiness must hold at any physically consistent point)."""
    gens = list(grid.generators.values())
    total = float(grid.total_load())
    weights = [rng.random() for _ in gens]
    scale = total / sum(weights)
    dispatch = {g.bus: weights[i] * scale for i, g in enumerate(gens)}
    return dispatch


class TestStealthinessInvariant:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**30))
    def test_any_crafted_attack_preserves_residual(self, seed):
        rng = random.Random(seed)
        grid = get_case("5bus-study2").build_grid()
        plan = MeasurementPlan.full(grid)
        dispatch = random_operating_point(grid, rng)
        pf = solve_dc_power_flow(grid, dispatch)

        excluded = []
        candidates = [l.index for l in grid.lines]
        line = rng.choice(candidates)
        remaining = [i for i in candidates if i != line]
        if grid.is_connected(remaining):
            excluded = [line]
        shift = {}
        if rng.random() < 0.7:
            bus = rng.choice([2, 3, 4, 5])
            shift[bus] = rng.uniform(-0.05, 0.05)

        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=excluded,
                                       state_shift=shift)
        believed = attack.believed_topology(grid)
        if not grid.is_connected(believed):
            return

        # (a) Noise-free: the poisoned readings are *exactly* consistent
        # with the believed topology — zero systematic residual.
        clean = TelemetrySimulator(plan, sigma=0.0).readings(
            pf.flows, pf.consumption)
        poisoned_estimator = WlsEstimator(plan, topology=believed)
        exact = poisoned_estimator.estimate(
            apply_to_readings(attack, plan, clean))
        assert exact.residual_norm == pytest.approx(0.0, abs=1e-8)

        # (b) With realistic noise, the bad-data detector stays quiet.
        # Significance 1e-6 keeps the chi-square test's own false-positive
        # rate out of the property: a *systematic* inconsistency (see the
        # naive-spoof test in tests/attacks) exceeds the threshold by
        # orders of magnitude, noise never does at this level.
        from repro.estimation import BadDataDetector
        sigma = 0.004
        z = TelemetrySimulator(plan, sigma=sigma, seed=seed).readings(
            pf.flows, pf.consumption)
        poisoned = apply_to_readings(attack, plan, z)
        detector = BadDataDetector(poisoned_estimator, sigma=sigma,
                                   significance=1e-6)
        assert not detector.test(poisoned).detected

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**30))
    def test_believed_load_changes_sum_to_zero(self, seed):
        rng = random.Random(seed)
        grid = get_case("5bus-study2").build_grid()
        dispatch = random_operating_point(grid, rng)
        pf = solve_dc_power_flow(grid, dispatch)
        shift = {rng.choice([2, 3, 4, 5]): rng.uniform(-0.1, 0.1)}
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[6], state_shift=shift)
        assert sum(attack.believed_load_changes.values()) == \
            pytest.approx(0.0, abs=1e-9)


class TestContainmentInvariant:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**30))
    def test_pure_exclusion_believed_optimum_bounded_by_current_cost(
            self, seed):
        """Believed min cost <= current cost for any consistent pure
        exclusion attack launched from a *capacity-feasible* point."""
        rng = random.Random(seed)
        grid = get_case("5bus-study1").build_grid()
        # Use a dispatch from a (randomly re-weighted) feasible OPF so
        # flows respect capacities.
        loads = {bus: load.existing for bus, load in grid.loads.items()}
        result = solve_dc_opf(grid, loads=loads, method="highs")
        if not result.feasible:
            return
        dispatch = {b: float(v) for b, v in result.dispatch.items()}
        pf = solve_dc_power_flow(grid, dispatch)
        current_cost = float(total_cost(list(grid.generators.values()),
                                        result.dispatch))

        line = rng.choice([l.index for l in grid.lines])
        remaining = [l.index for l in grid.lines if l.index != line]
        if not grid.is_connected(remaining):
            return
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[line])
        believed_loads = {
            bus: Fraction(str(round(
                float(load.existing)
                + attack.believed_load_changes.get(bus, 0.0), 9)))
            for bus, load in grid.loads.items()
        }
        believed = solve_dc_opf(grid, loads=believed_loads,
                                line_indices=remaining, method="highs")
        assert believed.feasible
        assert float(believed.cost) <= current_cost + 1e-6


class TestCapacityMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**30))
    def test_tighter_capacities_never_cheaper(self, seed):
        from dataclasses import replace
        from repro.grid.network import Grid
        rng = random.Random(seed)
        grid = get_case("ieee14").build_grid()
        factor = Fraction(rng.randint(50, 99), 100)
        lines = [replace(l, capacity=l.capacity * factor)
                 for l in grid.lines]
        tight = Grid(grid.buses, lines, list(grid.generators.values()),
                     list(grid.loads.values()))
        base = solve_dc_opf(grid, method="highs")
        squeezed = solve_dc_opf(tight, method="highs")
        assert base.feasible
        if squeezed.feasible:
            assert float(squeezed.cost) >= float(base.cost) - 1e-6
