"""Regression tests pinning the Eq. 37 threshold boundary semantics.

The paper's impact constraint (Eq. 37) asks for a cost increase of *at
least* I%, so an attack whose believed-minimum cost lands exactly on the
threshold ``base * (1 + I/100)`` is a successful attack.  Both analyzers
must treat the boundary inclusively (``cost >= threshold``); these tests
feed each analyzer its own maximum achievable increase back as the target
and require a sat verdict — a strict ``>`` comparison fails them.
"""

from fractions import Fraction

import pytest

from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case


@pytest.fixture(scope="module")
def smt_analyzer():
    return ImpactAnalyzer(get_case("5bus-study1"))


@pytest.fixture(scope="module")
def fast_analyzer():
    return FastImpactAnalyzer(get_case("5bus-study1"))


class TestSmtBoundary:
    def test_exact_boundary_is_satisfiable(self, smt_analyzer):
        baseline = smt_analyzer.analyze(ImpactQuery())
        assert baseline.satisfiable
        achieved = baseline.achieved_increase_percent
        assert isinstance(achieved, Fraction)  # exact rational arithmetic

        # Re-target the analysis at exactly the increase just achieved:
        # Eq. 37 says "at least", so this must stay satisfiable even
        # though no strictly greater increase may exist.
        boundary = smt_analyzer.analyze(
            ImpactQuery(target_increase_percent=achieved))
        assert boundary.satisfiable
        assert boundary.achieved_increase_percent >= achieved

    def test_evaluate_accepts_cost_equal_to_threshold(self, smt_analyzer):
        # Unit-level pin: _evaluate with the threshold set to exactly the
        # believed-optimum cost of a known attack must report success.
        report = smt_analyzer.analyze(ImpactQuery())
        assert report.satisfiable
        success, cost = smt_analyzer._evaluate(
            report.attack, report.believed_min_cost, "exact")
        assert cost == report.believed_min_cost
        assert success

    def test_threshold_definition(self, smt_analyzer):
        # threshold = base * (1 + I/100), computed exactly
        percent = Fraction(437, 100)
        threshold = smt_analyzer.threshold_for(percent)
        assert threshold == smt_analyzer.base_cost \
            * (1 + percent / 100)


class TestFastBoundary:
    def _best_percent(self, fast_analyzer):
        baseline = fast_analyzer.analyze(FastQuery(state_samples=4))
        assert baseline.satisfiable
        values = [e.best_increase_percent
                  for e in fast_analyzer.evaluations
                  if e.best_increase_percent is not None]
        return max(values)

    def test_exact_boundary_is_satisfiable(self, fast_analyzer):
        best = self._best_percent(fast_analyzer)
        # Fraction(float) is exact, so the target round-trips to the
        # float the analyzer compares against — a true boundary hit.
        report = fast_analyzer.analyze(FastQuery(
            target_increase_percent=Fraction(best), state_samples=4))
        assert report.satisfiable
        assert report.achieved_increase_percent is not None

    def test_just_above_boundary_is_unsat(self, fast_analyzer):
        best = self._best_percent(fast_analyzer)
        report = fast_analyzer.analyze(FastQuery(
            target_increase_percent=Fraction(best) + Fraction(1, 1000),
            state_samples=4))
        assert not report.satisfiable
