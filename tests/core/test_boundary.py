"""Regression tests pinning the Eq. 37 threshold boundary semantics.

The paper's impact constraint (Eq. 37) asks for a cost increase of *at
least* I%, so an attack whose believed-minimum cost lands exactly on the
threshold ``base * (1 + I/100)`` is a successful attack.  Both analyzers
must treat the boundary inclusively (``cost >= threshold``); these tests
feed each analyzer its own maximum achievable increase back as the target
and require a sat verdict — a strict ``>`` comparison fails them.
"""

from fractions import Fraction

import pytest

from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case


@pytest.fixture(scope="module")
def smt_analyzer():
    return ImpactAnalyzer(get_case("5bus-study1"))


@pytest.fixture(scope="module")
def fast_analyzer():
    return FastImpactAnalyzer(get_case("5bus-study1"))


class TestSmtBoundary:
    def test_exact_boundary_is_satisfiable(self, smt_analyzer):
        baseline = smt_analyzer.analyze(ImpactQuery())
        assert baseline.satisfiable
        achieved = baseline.achieved_increase_percent
        assert isinstance(achieved, Fraction)  # exact rational arithmetic

        # Re-target the analysis at exactly the increase just achieved:
        # Eq. 37 says "at least", so this must stay satisfiable even
        # though no strictly greater increase may exist.
        boundary = smt_analyzer.analyze(
            ImpactQuery(target_increase_percent=achieved))
        assert boundary.satisfiable
        assert boundary.achieved_increase_percent >= achieved

    def test_evaluate_accepts_cost_equal_to_threshold(self, smt_analyzer):
        # Unit-level pin: _evaluate with the threshold set to exactly the
        # believed-optimum cost of a known attack must report success.
        report = smt_analyzer.analyze(ImpactQuery())
        assert report.satisfiable
        success, cost = smt_analyzer._evaluate(
            report.attack, report.believed_min_cost, "exact")
        assert cost == report.believed_min_cost
        assert success

    def test_threshold_definition(self, smt_analyzer):
        # threshold = base * (1 + I/100), computed exactly
        percent = Fraction(437, 100)
        threshold = smt_analyzer.threshold_for(percent)
        assert threshold == smt_analyzer.base_cost \
            * (1 + percent / 100)


def _best_percent(fast_analyzer):
    baseline = fast_analyzer.analyze(FastQuery(state_samples=4))
    assert baseline.satisfiable
    values = [e.best_increase_percent
              for e in fast_analyzer.evaluations
              if e.best_increase_percent is not None]
    return max(values)


class TestFastBoundary:
    def _best_percent(self, fast_analyzer):
        return _best_percent(fast_analyzer)

    def test_exact_boundary_is_satisfiable(self, fast_analyzer):
        best = self._best_percent(fast_analyzer)
        # Fraction(float) is exact, so the target round-trips to the
        # float the analyzer compares against — a true boundary hit.
        report = fast_analyzer.analyze(FastQuery(
            target_increase_percent=Fraction(best), state_samples=4))
        assert report.satisfiable
        assert report.achieved_increase_percent is not None

    def test_just_above_boundary_is_unsat(self, fast_analyzer):
        best = self._best_percent(fast_analyzer)
        report = fast_analyzer.analyze(FastQuery(
            target_increase_percent=Fraction(best) + Fraction(1, 1000),
            state_samples=4))
        assert not report.satisfiable


class TestBoundaryEscalationParity:
    """A float verdict that lands inside the Eq. 37 guard band is never
    decided by float comparison: it is re-derived on the exact OPF path,
    and the verdict agrees between a warm (reused) analyzer and a cold
    (freshly prepared) one."""

    def _codes(self, report):
        return {d.code for d in (report.diagnostics.diagnostics
                                 if report.diagnostics else [])}

    def test_boundary_hit_is_escalated(self, fast_analyzer):
        best = _best_percent(fast_analyzer)
        report = fast_analyzer.analyze(FastQuery(
            target_increase_percent=Fraction(best), state_samples=4))
        assert report.satisfiable
        assert "numeric.boundary_escalated" in self._codes(report)
        assert report.trace.session["boundary_escalations"] >= 1

    def test_warm_and_cold_verdicts_agree_at_boundary(self, fast_analyzer):
        best = _best_percent(fast_analyzer)
        for delta in (Fraction(0), Fraction(1, 1000)):
            query = FastQuery(target_increase_percent=Fraction(best) + delta,
                              state_samples=4)
            warm = fast_analyzer.analyze(query)  # session reused
            cold = FastImpactAnalyzer(
                get_case("5bus-study1")).analyze(query)
            assert warm.satisfiable == cold.satisfiable, delta
            assert warm.status == cold.status == "complete"

    def test_fast_and_smt_verdicts_agree_at_boundary(self, fast_analyzer,
                                                     smt_analyzer):
        # The fast analyzer's own maximum, replayed as the target, must
        # be reachable by the exhaustive exact analyzer too: the exact
        # optimum dominates the fast path's best candidate.
        best = _best_percent(fast_analyzer)
        fast = fast_analyzer.analyze(FastQuery(
            target_increase_percent=Fraction(best), state_samples=4))
        smt = smt_analyzer.analyze(
            ImpactQuery(target_increase_percent=Fraction(best)))
        assert fast.satisfiable and smt.satisfiable

    def test_far_from_boundary_no_escalation(self, fast_analyzer):
        # A comfortable target on a clean grid decides on floats alone.
        report = fast_analyzer.analyze(FastQuery(
            target_increase_percent=1, state_samples=4))
        assert report.satisfiable
        assert report.trace.session["boundary_escalations"] == 0
