"""Tests for the fast (LODF/LCDF) analyzer and its agreement with the
full SMT framework on the 5-bus system."""

from fractions import Fraction

import pytest

from repro.core.fast import FastImpactAnalyzer, FastQuery
from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case


@pytest.fixture(scope="module")
def fast1():
    return FastImpactAnalyzer(get_case("5bus-study1"))


class TestFiveBusAgreement:
    def test_same_attack_as_smt(self, fast1):
        report = fast1.analyze(FastQuery())
        assert report.satisfiable
        attack = report.attack
        assert attack.excluded == [6]
        assert attack.altered_measurements == [6, 13, 17, 18]
        assert attack.compromised_buses == [3, 4]

    def test_same_impact_magnitude_as_smt(self, fast1):
        fast_report = fast1.analyze(FastQuery())
        smt_report = ImpactAnalyzer(get_case("5bus-study1")).analyze(
            ImpactQuery())
        assert float(fast_report.achieved_increase_percent) == \
            pytest.approx(float(smt_report.achieved_increase_percent),
                          abs=0.2)

    def test_unsat_above_ceiling(self, fast1):
        report = fast1.analyze(
            FastQuery(target_increase_percent=Fraction(5)))
        assert not report.satisfiable

    def test_candidate_diagnostics(self, fast1):
        fast1.analyze(FastQuery())
        by_line = {e.line_index: e for e in fast1.evaluations}
        # Line 6 is the only feasible candidate in study 1.
        assert by_line[6].feasible
        assert len(fast1.evaluations) == 1


class TestScalability:
    @pytest.mark.parametrize("name,buses", [
        ("ieee14", 14), ("ieee30", 30), ("ieee57", 57),
    ])
    def test_runs_on_ieee_systems(self, name, buses):
        analyzer = FastImpactAnalyzer(get_case(name))
        report = analyzer.analyze(FastQuery(target_increase_percent=1))
        assert report.candidates_examined > 0
        assert report.elapsed_seconds < 60

    def test_ieee14_finds_attack(self):
        analyzer = FastImpactAnalyzer(get_case("ieee14"))
        report = analyzer.analyze(FastQuery(target_increase_percent=1))
        assert report.satisfiable
        attack = report.attack
        assert len(attack.excluded) + len(attack.included) == 1
        # The reported believed loads stay within believability bounds.
        grid = analyzer.grid
        for bus, value in attack.believed_loads.items():
            load = grid.loads[bus]
            tolerance = Fraction(1, 1000)
            assert load.p_min - tolerance <= value <= \
                load.p_max + tolerance

    def test_state_infection_never_hurts(self):
        analyzer = FastImpactAnalyzer(get_case("ieee14"))
        pure = analyzer.analyze(
            FastQuery(target_increase_percent=Fraction(1, 2)))
        with_state = analyzer.analyze(
            FastQuery(target_increase_percent=Fraction(1, 2),
                      with_state_infection=True, state_samples=12))
        if pure.satisfiable:
            assert with_state.satisfiable
            assert float(with_state.achieved_increase_percent) >= \
                float(pure.achieved_increase_percent) - 1e-9

    def test_deterministic_given_seed(self):
        a = FastImpactAnalyzer(get_case("ieee30")).analyze(
            FastQuery(with_state_infection=True, seed=5,
                      state_samples=8))
        b = FastImpactAnalyzer(get_case("ieee30")).analyze(
            FastQuery(with_state_infection=True, seed=5,
                      state_samples=8))
        assert a.satisfiable == b.satisfiable
        if a.satisfiable:
            assert a.believed_min_cost == b.believed_min_cost
