"""Differential suite: the SMT framework vs. the fast analyzer.

Both analyzers answer the same question — does a stealthy topology
poisoning attack with at least the target cost impact exist? — through
the shared :class:`~repro.core.session.AnalysisSession` layer, so their
*verdicts* must agree wherever the fast analyzer's single-line candidate
space contains a witness.  This suite pins that agreement across a
seeded case library, including the cross-cutting paths the session
layer owns: budget exhaustion, preflight rejection, run-note
diagnostics, and warm (incremental) re-solving.
"""

from fractions import Fraction

import pytest

from repro.core import (
    FastImpactAnalyzer,
    FastQuery,
    ImpactAnalyzer,
    ImpactQuery,
)
from repro.grid.caseio import parse_case, write_case
from repro.grid.cases import get_case
from repro.smt.budget import SolverBudget

#: (case, target %) cells where the two analyzers must agree.  Chosen so
#: the sweep crosses each case's sat/unsat boundary.
CASE_LIBRARY = [
    ("5bus-study1", 1),
    ("5bus-study1", 3),
    ("5bus-study1", 5),
    ("5bus-study2", 2),
    ("5bus-study2", 8),
]


def _run_both(case, target, **common):
    smt = ImpactAnalyzer(case).analyze(ImpactQuery(
        target_increase_percent=target, **common))
    fast = FastImpactAnalyzer(case).analyze(FastQuery(
        target_increase_percent=target, **common))
    return smt, fast


def _codes(report):
    if report.diagnostics is None:
        return set()
    return {d.code for d in report.diagnostics.diagnostics}


class TestVerdictAgreement:
    @pytest.mark.parametrize("name,target", CASE_LIBRARY)
    def test_same_verdict_and_status(self, name, target):
        smt, fast = _run_both(get_case(name), target)
        assert smt.status == "complete"
        assert fast.status == "complete"
        assert smt.satisfiable == fast.satisfiable

    @pytest.mark.parametrize("name,target", CASE_LIBRARY)
    def test_cost_increase_agrees_to_query_precision(self, name, target):
        smt, fast = _run_both(get_case(name), target)
        if not smt.satisfiable:
            assert smt.believed_min_cost is None
            assert fast.believed_min_cost is None
            return
        smt_inc = float(smt.achieved_increase_percent)
        fast_inc = float(fast.achieved_increase_percent)
        # Both witnesses meet the target; the framework blocks candidates
        # at 2-decimal load precision, so the believed optima may differ
        # by sub-0.1% — never by a different verdict band.
        assert smt_inc >= target - 1e-6
        assert fast_inc >= target - 1e-6
        assert abs(smt_inc - fast_inc) < 0.1
        assert smt.believed_min_cost >= smt.threshold
        assert Fraction(fast.believed_min_cost) >= \
            fast.threshold * Fraction(999999, 1000000)


class TestIslandingRunNotes:
    """Satellite: both code paths emit the *same* run-note codes when a
    candidate islands the believed five-bus topology."""

    def _case(self):
        # Line 3 (2-3) removed from the true topology: bus 3 hangs on
        # line 6 alone, so the exclude-line-6 candidate islands it.
        text = write_case(get_case("5bus-study1"))
        text = text.replace("3 2 3 5.05 0.05 1 1 1 1 1",
                            "3 2 3 5.05 0.05 1 0 1 1 1")
        return parse_case(text, name="islanding-candidate")

    def test_identical_run_note_codes(self):
        smt, fast = _run_both(self._case(), 2)
        assert smt.satisfiable == fast.satisfiable
        assert _codes(smt) == _codes(fast)
        assert "topology.attack_islands_network" in _codes(smt)

    def test_fast_note_names_the_islanding_line(self):
        _, fast = _run_both(self._case(), 2)
        notes = [d for d in fast.diagnostics.diagnostics
                 if d.code == "topology.attack_islands_network"]
        assert notes and "line:6" in notes[0].components


class TestBudgetExhaustedAgreement:
    def test_both_report_partial_with_reason(self):
        case = get_case("5bus-study1")
        smt = ImpactAnalyzer(case).analyze(ImpactQuery(
            target_increase_percent=3,
            budget=SolverBudget(wall_seconds=1e-9)))
        fast = FastImpactAnalyzer(case).analyze(FastQuery(
            target_increase_percent=3,
            budget=SolverBudget(wall_seconds=1e-9)))
        for report in (smt, fast):
            assert report.status == "budget_exhausted"
            assert report.is_partial
            assert not report.satisfiable
            assert "wall-clock" in report.budget_reason
        # certified tracks the (shared) self-check default either way
        assert smt.certified == fast.certified


class TestRejectedAgreement:
    def _islanded_case(self):
        text = write_case(get_case("5bus-study1"))
        text = text.replace("3 2 3 5.05 0.05 1 1 1 1 1",
                            "3 2 3 5.05 0.05 1 0 1 1 1")
        text = text.replace("6 3 4 5.85 0.2 1 1 0 0 1",
                            "6 3 4 5.85 0.2 1 0 0 0 1")
        return parse_case(text, name="islanded")

    def test_both_reject_identically(self):
        case = self._islanded_case()
        smt = ImpactAnalyzer(case).analyze(ImpactQuery(
            target_increase_percent=3))
        fast = FastImpactAnalyzer(case).analyze(FastQuery(
            target_increase_percent=3))
        for report in (smt, fast):
            assert report.status == "degenerate_case"
            assert report.is_rejected
            assert not report.satisfiable
        smt_fatal = {d.code for d in smt.diagnostics.fatal}
        fast_fatal = {d.code for d in fast.diagnostics.fatal}
        assert smt_fatal == fast_fatal
        assert "topology.disconnected" in smt_fatal


class TestWarmColdEquivalence:
    """The incremental (warm) SMT path is a pure optimization: verdicts
    match the cold path at every threshold, and the session trace proves
    the encoding was built exactly once."""

    def test_threshold_sweep_matches_cold(self):
        case = get_case("5bus-study1")
        warm = ImpactAnalyzer(case, incremental=True)
        built = 0
        for target in (1, 2, 3, 4, 5, 6):
            warm_report = warm.solve_at(target)
            cold_report = ImpactAnalyzer(case).analyze(ImpactQuery(
                target_increase_percent=target))
            assert warm_report.satisfiable == cold_report.satisfiable
            assert warm_report.status == cold_report.status == "complete"
            session = warm_report.trace.session
            built += session["encodings_built"]
            assert session["strategy"] == "smt"
            cold_session = cold_report.trace.session
            assert cold_session["warm"] is False
            assert cold_session["encodings_built"] == 1
        assert built == 1   # encoded once, re-solved five more times

    def test_fast_solve_at_is_warm_after_first_run(self):
        analyzer = FastImpactAnalyzer(get_case("5bus-study1"))
        first = analyzer.solve_at(1)
        second = analyzer.solve_at(5)
        assert first.trace.session["encodings_built"] == 1
        assert second.trace.session["warm"] is True
        assert second.trace.session["encodings_built"] == 0


class TestSolveAtDefaultTarget:
    """Satellite: ``solve_at(percent=None)`` must fall back to
    ``case.min_increase_percent`` on *both* strategies, exactly like the
    one-shot ``analyze`` path does."""

    @pytest.mark.parametrize("name", ["5bus-study1", "5bus-study2"])
    def test_none_means_case_default_on_both_paths(self, name):
        case = get_case(name)
        expected = Fraction(case.min_increase_percent)
        smt = ImpactAnalyzer(case, incremental=True).solve_at(None)
        fast = FastImpactAnalyzer(case).solve_at(None)
        for report in (smt, fast):
            assert report.status == "complete"
            assert report.target_increase_percent == expected
            # the fallback threshold is derived from the default, on
            # each strategy's own exact base cost
            assert report.threshold == \
                report.base_cost * (1 + expected / 100)
        assert smt.satisfiable == fast.satisfiable

    def test_none_equals_explicit_default_and_oneshot(self):
        case = get_case("5bus-study1")
        expected = Fraction(case.min_increase_percent)
        implicit = FastImpactAnalyzer(case).solve_at()
        explicit = FastImpactAnalyzer(case).solve_at(expected)
        oneshot = FastImpactAnalyzer(case).analyze(FastQuery())
        assert implicit.satisfiable == explicit.satisfiable \
            == oneshot.satisfiable
        assert implicit.threshold == explicit.threshold \
            == oneshot.threshold
        assert implicit.target_increase_percent == expected
        assert oneshot.target_increase_percent == expected
