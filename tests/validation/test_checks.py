"""Tests for the preflight check functions.

Corrupt cases are built by surgically editing the bundled five-bus case
with :func:`dataclasses.replace`, so each test isolates exactly one
defect class and asserts the stable diagnostic code it must produce.
"""

import dataclasses

import pytest

from repro.grid.cases import case_names, get_case
from repro.validation import (
    DEGENERATE_CASE,
    INVALID_INPUT,
    check_attack_spec,
    check_feasibility,
    check_measurements,
    check_structure,
    check_topology,
    validate_case,
)


def base():
    return get_case("5bus-study1")


def tweak_lines(case, changes):
    """Replace fields of the line specs named in ``changes`` (by index)."""
    specs = [dataclasses.replace(spec, **changes.get(spec.index, {}))
             for spec in case.line_specs]
    return dataclasses.replace(case, line_specs=specs)


class TestCanonicalCasesAreClean:
    @pytest.mark.parametrize("name", case_names())
    def test_bundled_case_has_no_findings(self, name):
        report = validate_case(get_case(name))
        assert report.ok, report.render()
        assert report.diagnostics == []


class TestStructure:
    def test_line_with_unknown_bus(self):
        case = tweak_lines(base(), {2: {"to_bus": 99}})
        report = check_structure(case)
        assert report.has("line.unknown_bus")
        assert report.fatal_status() == INVALID_INPUT

    def test_self_loop(self):
        case = tweak_lines(base(), {2: {"to_bus": 1}})
        assert check_structure(case).has("line.self_loop")

    def test_nonpositive_admittance_and_capacity(self):
        case = tweak_lines(base(), {1: {"admittance": 0},
                                    2: {"capacity": -1}})
        report = check_structure(case)
        assert report.has("line.nonpositive_admittance")
        assert report.has("line.nonpositive_capacity")

    def test_duplicate_line_index(self):
        case = base()
        specs = list(case.line_specs)
        specs[1] = dataclasses.replace(specs[1], index=1)
        case = dataclasses.replace(case, line_specs=specs)
        report = check_structure(case)
        assert report.has("case.duplicate_line")

    def test_unknown_reference_bus(self):
        case = dataclasses.replace(base(), reference_bus=9)
        assert check_structure(case).has("case.unknown_reference_bus")

    def test_structural_failure_skips_downstream_checks(self):
        # a dangling bus reference must not trigger topology/feasibility
        # findings computed from the malformed structure.
        case = tweak_lines(base(), {2: {"to_bus": 99}})
        report = validate_case(case)
        assert report.fatal_status() == INVALID_INPUT
        assert not report.has("topology.disconnected")


class TestTopology:
    def test_islanded_bus_is_degenerate(self):
        case = tweak_lines(base(), {3: {"in_true_topology": False},
                                    6: {"in_true_topology": False}})
        report = check_topology(case)
        assert report.has("topology.isolated_bus")
        assert report.has("topology.disconnected")
        assert report.fatal_status() == DEGENERATE_CASE

    def test_no_in_service_lines(self):
        case = tweak_lines(
            base(), {i: {"in_true_topology": False} for i in range(1, 8)})
        report = check_topology(case)
        assert report.has("topology.no_lines")
        assert report.fatal_status() == DEGENERATE_CASE


class TestFeasibility:
    def test_load_exceeding_capacity(self):
        case = dataclasses.replace(base(),
                                   generators=base().generators[:1])
        report = check_feasibility(case)
        assert report.has("grid.load_exceeds_capacity")
        assert report.fatal_status() == DEGENERATE_CASE

    def test_no_generators(self):
        case = dataclasses.replace(base(), generators=[])
        report = check_feasibility(case)
        assert report.has("grid.no_generators")
        assert report.fatal_status() == DEGENERATE_CASE

    def test_no_loads_degrades(self):
        case = dataclasses.replace(base(), loads=[])
        report = check_feasibility(case)
        assert report.has("grid.no_loads")


class TestMeasurements:
    def test_duplicate_index(self):
        case = base()
        specs = list(case.measurement_specs)
        specs[1] = dataclasses.replace(specs[1], index=1)
        case = dataclasses.replace(case, measurement_specs=specs)
        report = check_measurements(case, observability=False)
        assert report.has("meas.duplicate_index")

    def test_index_out_of_range(self):
        case = base()
        specs = list(case.measurement_specs)
        specs[-1] = dataclasses.replace(specs[-1], index=99)
        case = dataclasses.replace(case, measurement_specs=specs)
        report = check_measurements(case, observability=False)
        assert report.has("meas.index_out_of_range")

    def test_none_taken_degrades(self):
        case = base()
        specs = [dataclasses.replace(s, taken=False)
                 for s in case.measurement_specs]
        case = dataclasses.replace(case, measurement_specs=specs)
        report = check_measurements(case, observability=False)
        assert report.has("meas.none_taken")
        assert report.ok  # degraded, not fatal

    def test_unobservable_set_flagged(self):
        # keep only the first flow measurement: far too few for the
        # five-bus system's four free angles.
        case = base()
        specs = [dataclasses.replace(s, taken=(s.index == 1))
                 for s in case.measurement_specs]
        case = dataclasses.replace(case, measurement_specs=specs)
        report = check_measurements(case, observability=True)
        assert report.has("meas.unobservable")
        assert check_measurements(case, observability=False).has(
            "meas.unobservable") is False


class TestAttackSpec:
    def test_negative_resources(self):
        case = dataclasses.replace(base(), resource_measurements=-1)
        report = check_attack_spec(case)
        assert report.has("attack.resource_invalid")
        assert report.fatal_status() == INVALID_INPUT

    def test_negative_target_warns(self):
        case = dataclasses.replace(base(), min_increase_percent=-3)
        report = check_attack_spec(case)
        assert report.has("attack.target_negative")
        assert report.ok

    def test_negative_base_cost_warns(self):
        case = dataclasses.replace(base(), base_cost=-10)
        report = check_attack_spec(case)
        assert report.has("attack.base_cost_negative")
        assert report.ok

    def test_zero_base_cost_means_compute_it(self):
        # the paper's convention: 0 asks the tool to use the attack-free
        # OPF cost — it must not be flagged.
        case = dataclasses.replace(base(), base_cost=0)
        assert not check_attack_spec(case).has(
            "attack.base_cost_negative")

    def test_no_alterable_lines_warns(self):
        case = tweak_lines(
            base(), {i: {"status_alterable": False}
                     for i in range(1, 8)})
        report = check_attack_spec(case)
        assert report.has("attack.no_candidates")
        assert report.ok
