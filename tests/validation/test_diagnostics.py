"""Tests for the structured-diagnostic primitives."""

import pytest

from repro.validation import (
    DEGENERATE_CASE,
    DEGRADED,
    FATAL,
    INVALID_INPUT,
    WARNING,
    Diagnostic,
    ValidationReport,
)


class TestDiagnostic:
    def test_components_normalized_to_strings(self):
        diag = Diagnostic("line.self_loop", FATAL, "msg",
                          components=("line:3", 7))
        assert diag.components == ("line:3", "7")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("x", "catastrophic", "msg")

    def test_round_trip(self):
        diag = Diagnostic("gen.unknown_bus", FATAL, "generator at 9",
                          components=("generator:9",), hint="fix it")
        assert Diagnostic.from_dict(diag.to_dict()) == diag

    def test_hint_omitted_from_payload_when_absent(self):
        payload = Diagnostic("a.b", WARNING, "msg").to_dict()
        assert "hint" not in payload
        assert Diagnostic.from_dict(payload).hint is None

    @pytest.mark.parametrize("mangle", [
        lambda p: p.pop("code"),
        lambda p: p.update(code=""),
        lambda p: p.update(severity="nope"),
        lambda p: p.pop("message"),
        lambda p: p.update(components="bus:1"),
        lambda p: p.update(components=[1, 2]),
        lambda p: p.update(hint=42),
    ])
    def test_malformed_payload_rejected(self, mangle):
        payload = Diagnostic("a.b", FATAL, "msg",
                             components=("bus:1",), hint="h").to_dict()
        mangle(payload)
        with pytest.raises(ValueError):
            Diagnostic.from_dict(payload)

    def test_render_mentions_code_components_and_hint(self):
        diag = Diagnostic("bus.bad", FATAL, "broken",
                          components=("bus:2",), hint="repair")
        text = diag.render()
        assert "bus.bad" in text and "bus:2" in text
        assert "hint: repair" in text


class TestValidationReport:
    def _report(self):
        report = ValidationReport(subject="test case")
        report.add("topology.disconnected", FATAL, "islanded",
                   ("bus:3",))
        report.add("meas.unobservable", DEGRADED, "underdetermined")
        report.add("attack.core_line_open", WARNING, "odd", ("line:3",))
        return report

    def test_severity_buckets(self):
        report = self._report()
        assert [d.code for d in report.fatal] == ["topology.disconnected"]
        assert [d.code for d in report.degraded] == ["meas.unobservable"]
        assert [d.code for d in report.warnings] \
            == ["attack.core_line_open"]
        assert not report.ok
        assert report.has("meas.unobservable")
        assert not report.has("gen.unknown_bus")

    def test_fatal_status_classification(self):
        assert ValidationReport().fatal_status() is None
        degenerate = ValidationReport()
        degenerate.add("topology.disconnected", FATAL, "islanded")
        assert degenerate.fatal_status() == DEGENERATE_CASE
        invalid = ValidationReport()
        invalid.add("line.unknown_bus", FATAL, "dangling")
        assert invalid.fatal_status() == INVALID_INPUT
        # structural malformation dominates a mixed report: the
        # degeneracy may be an artifact of the malformation.
        mixed = self._report()
        mixed.add("line.unknown_bus", FATAL, "dangling")
        assert mixed.fatal_status() == INVALID_INPUT

    def test_round_trip(self):
        report = self._report()
        rebuilt = ValidationReport.from_dict(report.to_dict())
        assert rebuilt == report

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            ValidationReport.from_dict({"subject": "x"})
        with pytest.raises(ValueError):
            ValidationReport.from_dict(
                {"subject": "x", "diagnostics": [{"code": "a"}]})

    def test_render_orders_by_severity(self):
        report = ValidationReport(subject="s")
        report.add("w", WARNING, "later")
        report.add("f", FATAL, "first")
        text = report.render()
        assert text.index("f: first") < text.index("w: later")
        assert ValidationReport(subject="s").render() \
            == "s: no findings"

    def test_extend_merges_diagnostics(self):
        one = self._report()
        two = ValidationReport()
        two.add("gen.unknown_bus", FATAL, "dangling")
        one.extend(two)
        assert one.has("gen.unknown_bus")
        assert len(one.diagnostics) == 4
