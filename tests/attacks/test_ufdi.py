"""Tests for UFDI attack construction and restricted attack spaces."""

import numpy as np
import pytest

from repro.attacks.model import AttackerModel
from repro.attacks.ufdi import (
    craft_attack,
    feasible_attack,
    restricted_attack_space,
)
from repro.estimation.bdd import BadDataDetector
from repro.estimation.measurement import MeasurementPlan, TelemetrySimulator
from repro.estimation.wls import WlsEstimator
from repro.exceptions import ModelError
from repro.grid.caseio import MeasurementSpec
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.grid.dcpf import solve_dc_power_flow


@pytest.fixture
def grid():
    return get_case("5bus-study2").build_grid()


class TestCraft:
    def test_state_shift_recovered_by_estimator(self, grid):
        """The crafted attack shifts the estimate by exactly c."""
        plan = MeasurementPlan.full(grid)
        dispatch = {b: float(p) for b, p in proportional_dispatch(
            list(grid.generators.values()), grid.total_load()).items()}
        pf = solve_dc_power_flow(grid, dispatch)
        z = TelemetrySimulator(plan, sigma=0.0).readings(
            pf.flows, pf.consumption)
        attack = craft_attack(grid, {3: 0.02})
        taken = plan.taken_indices()
        attacked = z + np.array([
            attack.measurement_deltas.get(i, 0.0) for i in taken])
        estimate = WlsEstimator(plan).estimate(attacked)
        assert estimate.angles[3] == pytest.approx(pf.angles[3] + 0.02,
                                                   abs=1e-9)
        assert estimate.angles[2] == pytest.approx(pf.angles[2], abs=1e-9)

    def test_attack_is_stealthy(self, grid):
        plan = MeasurementPlan.full(grid)
        dispatch = {b: float(p) for b, p in proportional_dispatch(
            list(grid.generators.values()), grid.total_load()).items()}
        pf = solve_dc_power_flow(grid, dispatch)
        sigma = 0.004
        z = TelemetrySimulator(plan, sigma=sigma, seed=11).readings(
            pf.flows, pf.consumption)
        attack = craft_attack(grid, {3: 0.05, 4: -0.02})
        vector = np.array([attack.measurement_deltas.get(i, 0.0)
                           for i in plan.taken_indices()])
        detector = BadDataDetector(WlsEstimator(plan), sigma=sigma)
        assert detector.residual_unchanged_by(z, vector)

    def test_reference_shift_rejected(self, grid):
        with pytest.raises(ModelError):
            craft_attack(grid, {1: 0.1})

    def test_unknown_bus_rejected(self, grid):
        with pytest.raises(ModelError):
            craft_attack(grid, {17: 0.1})

    def test_infected_states_listed(self, grid):
        attack = craft_attack(grid, {3: 0.05, 4: 0.0})
        assert attack.infected_states == [3]


class TestRestrictedSpace:
    def test_unrestricted_space_is_full(self, grid):
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        # Pretend nothing is protected.
        specs = [MeasurementSpec(i, True, False, True)
                 for i in range(1, 20)]
        attacker.plan = MeasurementPlan(grid, specs)
        basis = restricted_attack_space(attacker)
        assert basis.shape == (4, 4)

    def test_study2_restrictions_pin_states_2_and_5(self, grid):
        """Secured bus-1 measurements (m1, m2, m15) force c_2 = c_5 = 0."""
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        basis = restricted_attack_space(attacker)
        assert basis.shape[1] == 2  # only states 3 and 4 are free
        # Rows are ordered by state_order: buses 2, 3, 4, 5.
        assert np.allclose(basis[0], 0, atol=1e-9)   # state 2 pinned
        assert np.allclose(basis[3], 0, atol=1e-9)   # state 5 pinned

    def test_fully_protected_space_is_empty(self, grid):
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        specs = [MeasurementSpec(i, True, True, False)
                 for i in range(1, 20)]
        attacker.plan = MeasurementPlan(grid, specs)
        basis = restricted_attack_space(attacker)
        assert basis.shape[1] == 0


class TestFeasibleAttack:
    def test_study2_feasible_attack_exists(self, grid):
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        attack = feasible_attack(attacker)
        assert attack is not None
        # Only alterable measurements are touched.
        for index in attack.altered_measurements:
            if attacker.plan.is_taken(index):
                assert attacker.can_alter_measurement(index)

    def test_fully_protected_returns_none(self, grid):
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        specs = [MeasurementSpec(i, True, True, False)
                 for i in range(1, 20)]
        attacker.plan = MeasurementPlan(grid, specs)
        assert feasible_attack(attacker) is None
