"""Tests for the attacker model (Table I attributes)."""

import pytest

from repro.attacks.model import AttackerModel
from repro.grid.cases import get_case


@pytest.fixture
def attacker():
    return AttackerModel.from_case(get_case("5bus-study1"))


class TestLineQueries:
    def test_exclusion_candidates_study1(self, attacker):
        # Only line 6 is in service, outside the core, status unsecured
        # and alterable.
        assert attacker.exclusion_candidates() == [6]

    def test_no_inclusion_candidates_study1(self, attacker):
        # Every line is in the true topology.
        assert attacker.inclusion_candidates() == []

    def test_core_line_not_excludable(self, attacker):
        assert not attacker.can_exclude(1)   # core + not alterable
        assert not attacker.can_exclude(3)   # core
        assert not attacker.can_exclude(5)   # status secured

    def test_knowledge(self, attacker):
        assert all(attacker.knows_admittance(i) for i in range(1, 8))


class TestMeasurementQueries:
    def test_alterable_requires_access_and_no_security(self, attacker):
        assert attacker.can_alter_measurement(6)
        assert not attacker.can_alter_measurement(1)   # secured
        assert not attacker.can_alter_measurement(12)  # accessible, secured
        assert not attacker.can_alter_measurement(11)  # no access

    def test_alterable_measurements_study1(self, attacker):
        # Accessible and unsecured: 6, 7, 10, 13, 17, 18.
        assert attacker.alterable_measurements() == [6, 7, 10, 13, 17, 18]

    def test_compromised_buses(self, attacker):
        assert attacker.compromised_buses({6, 13, 17, 18}) == {3, 4}


class TestAlterationSetChecks:
    def test_paper_attack_set_is_valid(self, attacker):
        assert attacker.check_alteration_set({6, 13, 17, 18}) == []

    def test_secured_measurement_rejected(self, attacker):
        problems = attacker.check_alteration_set({6, 12})
        assert any("secured" in p for p in problems)

    def test_inaccessible_rejected(self, attacker):
        problems = attacker.check_alteration_set({11})
        assert any("not accessible" in p for p in problems)
        assert any("not taken" in p for p in problems)

    def test_measurement_budget(self, attacker):
        attacker.max_measurements = 2
        problems = attacker.check_alteration_set({6, 13, 17})
        assert any("exceed the budget" in p for p in problems)

    def test_bus_budget(self, attacker):
        attacker.max_buses = 1
        problems = attacker.check_alteration_set({6, 13})
        assert any("T_B" in p for p in problems)
