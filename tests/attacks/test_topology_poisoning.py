"""End-to-end tests of topology poisoning: craft the false data, feed the
poisoned telemetry through the topology processor, WLS estimator and bad
data detector, and confirm the EMS ends up believing the attacker's lie."""

import numpy as np
import pytest

from repro.attacks.model import AttackerModel
from repro.attacks.topology_poisoning import (
    apply_to_readings,
    apply_to_telemetry,
    craft_topology_attack,
    validate_against_attacker,
)
from repro.estimation.bdd import BadDataDetector
from repro.estimation.measurement import MeasurementPlan, TelemetrySimulator
from repro.estimation.wls import WlsEstimator
from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.grid.dcpf import solve_dc_power_flow
from repro.opf import solve_dc_opf
from repro.topology import StatusTelemetry, TopologyProcessor


@pytest.fixture
def setup():
    grid = get_case("5bus-study2").build_grid()
    plan = MeasurementPlan.full(grid)
    base = solve_dc_opf(grid, method="exact").require_feasible()
    dispatch = {b: float(v) for b, v in base.dispatch.items()}
    pf = solve_dc_power_flow(grid, dispatch)
    return grid, plan, dispatch, pf


class TestCrafting:
    def test_exclusion_deltas_match_paper_equations(self, setup):
        grid, plan, dispatch, pf = setup
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[6])
        f6 = pf.flows[6]
        l = grid.num_lines
        # Eq. 13: the line's flow measurements zero out.
        assert attack.measurement_deltas[6] == pytest.approx(-f6)
        assert attack.measurement_deltas[l + 6] == pytest.approx(f6)
        # Eq. 16: endpoint consumptions absorb the flow.
        assert attack.measurement_deltas[2 * l + 3] == pytest.approx(f6)
        assert attack.measurement_deltas[2 * l + 4] == pytest.approx(-f6)
        assert attack.believed_load_changes == pytest.approx(
            {3: f6, 4: -f6})

    def test_open_line_cannot_be_excluded(self, setup):
        grid, _, _, pf = setup
        modified = grid.with_line_statuses({6: False})
        with pytest.raises(ModelError):
            craft_topology_attack(modified, pf.flows, pf.angles,
                                  excluded=[6])

    def test_closed_line_cannot_be_included(self, setup):
        grid, _, _, pf = setup
        with pytest.raises(ModelError):
            craft_topology_attack(grid, pf.flows, pf.angles, included=[6])

    def test_inclusion_flow_from_angles(self, setup):
        grid, _, dispatch, _ = setup
        physical = grid.with_line_statuses({5: False})
        pf = solve_dc_power_flow(physical, dispatch)
        attack = craft_topology_attack(physical, pf.flows, pf.angles,
                                       included=[5])
        line = physical.line(5)
        would_be = float(line.admittance) * (
            pf.angles[line.from_bus] - pf.angles[line.to_bus])
        assert attack.measurement_deltas[5] == pytest.approx(would_be)

    def test_state_shift_reference_rejected(self, setup):
        grid, _, _, pf = setup
        with pytest.raises(ModelError):
            craft_topology_attack(grid, pf.flows, pf.angles,
                                  excluded=[6], state_shift={1: 0.1})

    def test_believed_topology(self, setup):
        grid, _, _, pf = setup
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[6])
        assert attack.believed_topology(grid) == [1, 2, 3, 4, 5, 7]


class TestEndToEnd:
    def run_pipeline(self, grid, plan, dispatch, pf, attack, sigma=0.003):
        """Poison statuses + readings, run the full EMS pipeline."""
        telemetry = apply_to_telemetry(attack,
                                       StatusTelemetry.from_grid(grid))
        view = TopologyProcessor(grid).map_topology(telemetry)
        simulator = TelemetrySimulator(plan, sigma=sigma, seed=23)
        z = simulator.readings(pf.flows, pf.consumption)
        attacked = apply_to_readings(attack, plan, z)
        estimator = WlsEstimator(plan, topology=view.mapped_lines)
        detector = BadDataDetector(estimator, sigma=sigma)
        return view, estimator, detector, attacked

    def test_exclusion_fools_ems_without_detection(self, setup):
        grid, plan, dispatch, pf = setup
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[6])
        view, estimator, detector, attacked = self.run_pipeline(
            grid, plan, dispatch, pf, attack)
        assert view.excluded_lines == [6]
        report = detector.test(attacked)
        assert not report.detected
        estimate = estimator.estimate(attacked)
        loads = estimate.estimated_loads(grid, dispatch)
        expected_3 = float(grid.loads[3].existing) + pf.flows[6]
        assert loads[3] == pytest.approx(expected_3, abs=0.02)

    def test_state_strengthened_attack_undetected(self, setup):
        grid, plan, dispatch, pf = setup
        attack = craft_topology_attack(
            grid, pf.flows, pf.angles, excluded=[6],
            state_shift={3: pf.flows[6] / float(grid.line(3).admittance)})
        view, estimator, detector, attacked = self.run_pipeline(
            grid, plan, dispatch, pf, attack)
        report = detector.test(attacked)
        assert not report.detected
        # The state shift moves the believed load change from bus 3 to
        # bus 2 (the case-study-2 trick).
        estimate = estimator.estimate(attacked)
        loads = estimate.estimated_loads(grid, dispatch)
        assert loads[3] == pytest.approx(float(grid.loads[3].existing),
                                         abs=0.02)
        assert loads[2] > float(grid.loads[2].existing) + 0.02

    def test_naive_status_spoof_without_data_injection_is_detected(
            self, setup):
        """Spoofing the breaker but not the meters trips the BDD."""
        grid, plan, dispatch, pf = setup
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[6])
        telemetry = apply_to_telemetry(attack,
                                       StatusTelemetry.from_grid(grid))
        view = TopologyProcessor(grid).map_topology(telemetry)
        sigma = 0.003
        z = TelemetrySimulator(plan, sigma=sigma, seed=23).readings(
            pf.flows, pf.consumption)
        estimator = WlsEstimator(plan, topology=view.mapped_lines)
        detector = BadDataDetector(estimator, sigma=sigma)
        # No measurement alteration: the inconsistency is visible.
        assert detector.test(z).detected


class TestAttackerValidation:
    def test_study2_attack_within_power(self, setup):
        grid, plan, dispatch, pf = setup
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[6])
        assert validate_against_attacker(attack, attacker) == []

    def test_core_line_rejected(self, setup):
        grid, plan, dispatch, pf = setup
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[1])
        problems = validate_against_attacker(attack, attacker)
        assert any("cannot be excluded" in p for p in problems)

    def test_budget_violations_detected(self, setup):
        grid, plan, dispatch, pf = setup
        attacker = AttackerModel.from_case(get_case("5bus-study2"), grid)
        attacker.max_measurements = 1
        attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                       excluded=[6])
        problems = validate_against_attacker(attack, attacker)
        assert any("budget" in p for p in problems)
