"""Chaos tests for certified solving: corrupted certificates are caught.

Every fault here forges an answer that *looks* plausible — a model with
one flipped bit, a proof missing its tail, a cache entry whose verdict
was rewritten in place — and the suite asserts the stack surfaces each
one as a ``certificate_error`` (or silently recomputes the truth), and
NEVER accepts it as a sat/unsat verdict.
"""

from fractions import Fraction

import pytest

from repro.core.framework import ImpactAnalyzer, ImpactQuery
from repro.exceptions import CertificateError
from repro.grid.cases import get_case
from repro.runner import (
    ResultCache,
    ScenarioSpec,
    SweepConfig,
    SweepEngine,
)
from repro.runner.engine import execute_scenario, verify_cached_outcome
from repro.runner.trace import CERTIFICATE_ERROR, OK, ScenarioOutcome
from repro.smt import (
    BoolVar,
    Not,
    Or,
    RealVar,
    SmtSolver,
    SolveResult,
    verify_sat,
    verify_unsat,
)
from repro.testing import (
    corrupt_proof,
    tamper_model,
    truncate_proof,
    write_stale_cache_entry,
)


def _fast_spec(label="cert-cell", target=1):
    return ScenarioSpec.build("5bus-study1", analyzer="fast",
                              target=target, max_candidates=10,
                              state_samples=4, label=label)


def _smt_spec(label="cert-smt", target=3):
    return ScenarioSpec.build("5bus-study1", analyzer="smt",
                              target=target, max_candidates=20,
                              label=label)


class TestBitFlippedModels:
    """A model one bit off must never verify."""

    def test_every_flip_is_caught(self):
        solver = SmtSolver(certify=True)
        p, q = BoolVar("p"), BoolVar("q")
        x = RealVar("x")
        solver.add(Or(p, q))
        solver.add(Not(p))
        solver.add(x.eq(Fraction(5, 3)))
        assert solver.solve() is SolveResult.SAT
        verify_sat(solver)
        model = solver.model()
        for var in (p, q):
            with pytest.raises(CertificateError):
                verify_sat(solver, model=tamper_model(model, bool_var=var))
        with pytest.raises(CertificateError):
            verify_sat(solver, model=tamper_model(model, real_var=x))


class TestTruncatedProofs:
    """A proof missing steps must never verify."""

    def _unsat_solver(self):
        solver = SmtSolver(certify=True)
        x, y = RealVar("x"), RealVar("y")
        solver.add(x <= y)
        solver.add(y <= x - 1)
        p = BoolVar("p")
        solver.add(Or(p, x >= 0))
        assert solver.solve() is SolveResult.UNSAT
        return solver

    def test_each_truncation_depth_is_caught(self):
        solver = self._unsat_solver()
        certificate = solver.last_certificate
        verify_unsat(solver, certificate)
        # Dropping the whole tail in increasing bites: the refutation
        # must stop closing at some point, and from there on every
        # deeper truncation must also be rejected.
        rejected = 0
        for drop in range(1, certificate.num_steps + 1):
            try:
                verify_unsat(solver, truncate_proof(certificate, drop))
            except CertificateError:
                rejected += 1
        assert rejected >= 1
        with pytest.raises(CertificateError):
            verify_unsat(solver, truncate_proof(
                certificate, certificate.num_steps))

    def test_corrupted_learned_clause_is_caught(self):
        solver = SmtSolver(certify=True)
        ps = [BoolVar(f"c{i}") for i in range(3)]
        solver.add(Or(ps[0], ps[1]))
        solver.add(Or(ps[0], Not(ps[1])))
        solver.add(Or(Not(ps[0]), ps[2]))
        solver.add(Or(Not(ps[0]), Not(ps[2])))
        assert solver.solve() is SolveResult.UNSAT
        certificate = solver.last_certificate
        verify_unsat(solver, certificate)
        from repro.smt.proof import RUP
        if any(s.kind == RUP and s.lits for s in certificate.steps):
            with pytest.raises(CertificateError):
                verify_unsat(solver, corrupt_proof(certificate))


class TestAnalyzerSurfacesCertificateErrors:
    """A failing check inside the framework becomes a certificate_error
    report, never a sat/unsat verdict."""

    def test_sabotaged_checker_yields_certificate_error_status(
            self, monkeypatch):
        analyzer = ImpactAnalyzer(get_case("5bus-study1"))

        def rejecting_verify_sat(solver, model=None, assumptions=None,
                                 extra_terms=()):
            raise CertificateError("injected model rejection")

        monkeypatch.setattr("repro.core.session.verify_sat",
                            rejecting_verify_sat)
        report = analyzer.analyze(ImpactQuery(self_check=True))
        assert report.status == "certificate_error"
        assert report.certified is False
        assert "injected model rejection" in report.certificate_error
        assert not report.satisfiable
        assert "certificate error" in report.render()

    def test_execute_scenario_maps_to_certificate_error_status(
            self, monkeypatch):
        def rejecting_verify_sat(solver, model=None, assumptions=None,
                                 extra_terms=()):
            raise CertificateError("injected model rejection")

        monkeypatch.setattr("repro.core.session.verify_sat",
                            rejecting_verify_sat)
        outcome = execute_scenario(_smt_spec(), self_check=True)
        assert outcome.status == CERTIFICATE_ERROR
        assert outcome.certified is False
        assert outcome.verdict == CERTIFICATE_ERROR
        assert "injected" in outcome.error

    def test_certificate_error_outcomes_are_not_cached(self, monkeypatch,
                                                       tmp_path):
        def rejecting_verify_sat(solver, model=None, assumptions=None,
                                 extra_terms=()):
            raise CertificateError("injected model rejection")

        monkeypatch.setattr("repro.core.session.verify_sat",
                            rejecting_verify_sat)
        cache_dir = tmp_path / "cache"
        engine = SweepEngine(SweepConfig(
            workers=1, cache_dir=str(cache_dir), self_check=True))
        spec = _smt_spec()
        trace = engine.run([spec])
        assert trace.outcomes[0].status == CERTIFICATE_ERROR
        assert trace.to_dict()["totals"]["certificate_errors"] == 1
        # Untrusted verdicts must never be checkpointed.
        assert ResultCache(str(cache_dir)).get(spec.fingerprint()) is None


class TestStaleCacheEntries:
    """Structurally valid but lying cache entries are rejected on load
    and recomputed — the sweep result is the truth, not the forgery."""

    def _seeded_cache(self, tmp_path, spec):
        cache_dir = str(tmp_path / "cache")
        engine = SweepEngine(SweepConfig(workers=1, cache_dir=cache_dir,
                                         self_check=True))
        trace = engine.run([spec])
        outcome = trace.outcomes[0]
        assert outcome.status == OK and outcome.certified is True
        return cache_dir, outcome

    @pytest.mark.parametrize("mutations", [
        # Verdict flipped in place (believed cost left behind betrays it;
        # a *fully* consistent forgery is indistinguishable from a
        # genuine result by construction — only fingerprints catch it).
        {"satisfiable": False, "achieved_increase_percent": None},
        {"believed_min_cost": "1/1", "achieved_increase_percent": -99.9},
        {"certified": None},
        {"status": "certificate_error"},
    ])
    def test_forged_entry_is_recomputed(self, tmp_path, mutations):
        spec = _fast_spec()
        cache_dir, genuine = self._seeded_cache(tmp_path, spec)
        fingerprint = spec.fingerprint()
        cache = ResultCache(cache_dir)
        write_stale_cache_entry(cache, fingerprint, genuine.to_dict(),
                                **mutations)
        engine = SweepEngine(SweepConfig(workers=1, cache_dir=cache_dir,
                                         self_check=True))
        trace = engine.run([spec])
        outcome = trace.outcomes[0]
        # Never served from cache; recomputed to the genuine verdict.
        assert not outcome.cache_hit
        assert trace.cache_rejected == 1
        assert trace.to_dict()["totals"]["cache_rejected"] == 1
        assert outcome.status == OK
        assert outcome.satisfiable == genuine.satisfiable
        assert outcome.believed_min_cost == genuine.believed_min_cost
        # The forged entry was overwritten with the recomputed truth.
        healed = ScenarioOutcome.from_dict(cache.get(fingerprint))
        assert healed.satisfiable == genuine.satisfiable

    def test_uncertified_entry_is_fine_without_self_check(self, tmp_path):
        spec = _fast_spec()
        cache_dir = str(tmp_path / "cache")
        engine = SweepEngine(SweepConfig(workers=1, cache_dir=cache_dir))
        first = engine.run([spec]).outcomes[0]
        assert first.status == OK and first.certified is None
        again = engine.run([spec]).outcomes[0]
        assert again.cache_hit
        # ... but a certified sweep refuses it and recomputes.
        certified_engine = SweepEngine(SweepConfig(
            workers=1, cache_dir=cache_dir, self_check=True))
        trace = certified_engine.run([spec])
        outcome = trace.outcomes[0]
        assert not outcome.cache_hit
        assert trace.cache_rejected == 1
        assert outcome.certified is True


class TestVerifyCachedOutcome:
    """Unit coverage of the semantic load-time check."""

    def _genuine(self):
        spec = _fast_spec(label="unit-cell", target=1)
        outcome = execute_scenario(spec, "fp", self_check=True)
        assert outcome.status == OK
        return spec, outcome

    def test_genuine_outcome_passes(self):
        spec, outcome = self._genuine()
        verify_cached_outcome(outcome, spec)
        verify_cached_outcome(outcome, spec, require_certified=True)

    def test_threshold_forgery_rejected(self):
        spec, outcome = self._genuine()
        outcome.threshold = str(Fraction(outcome.threshold) + 1)
        with pytest.raises(ValueError):
            verify_cached_outcome(outcome, spec)

    def test_subthreshold_sat_rejected(self):
        spec, outcome = self._genuine()
        if outcome.satisfiable:
            outcome.believed_min_cost = str(
                Fraction(outcome.threshold) - 1)
            with pytest.raises(ValueError):
                verify_cached_outcome(outcome, spec)

    def test_inconsistent_increase_rejected(self):
        spec, outcome = self._genuine()
        if outcome.achieved_increase_percent is not None:
            outcome.achieved_increase_percent += 5.0
            with pytest.raises(ValueError):
                verify_cached_outcome(outcome, spec)

    def test_missing_verdict_rejected(self):
        spec, outcome = self._genuine()
        outcome.satisfiable = None
        with pytest.raises(ValueError):
            verify_cached_outcome(outcome, spec)

    def test_uncertified_rejected_only_when_required(self):
        spec, outcome = self._genuine()
        outcome.certified = None
        verify_cached_outcome(outcome, spec)
        with pytest.raises(ValueError):
            verify_cached_outcome(outcome, spec, require_certified=True)
