"""Chaos acceptance for the distributed sweep fabric.

The contract under test: a fleet of real ``repro worker`` subprocesses
driving a grid through a coordinator must finish with **zero lost
cells, zero duplicated cells, and outcomes deterministically identical
to a single-machine ``repro sweep``** — under injected worker crashes,
stragglers, network partitions, silent lease abandonment, a SIGKILLed
worker, and a coordinator killed mid-run and resumed from its journal
(process-level, exit code 5, like ``sweep``).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.cli import build_parser, _grid_specs
from repro.fabric import Coordinator, CoordinatorConfig, read_events
from repro.runner import SweepConfig, SweepEngine
from repro.runner.trace import deterministic_outcome_view
from repro.testing import (
    CRASH_WORKER,
    LEASE_LOSS,
    PARTITION,
    STRAGGLER,
    Fault,
    FabricFaultPlan,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

GRID_ARGS = ["--cases", "ieee30", "--targets", "1,2,3,4",
             "--scenarios", "3", "--analyzer", "fast"]


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def grid_specs():
    args = build_parser().parse_args(["coordinate"] + GRID_ARGS)
    return _grid_specs(args)


def serial_views(specs):
    serial = SweepEngine(SweepConfig(workers=1, use_cache=False))
    views = {}
    for outcome in serial.run(specs).outcomes:
        views[outcome.spec.label] = \
            deterministic_outcome_view(outcome.to_dict())
    return views


def fabric_views(trace):
    views = {}
    for outcome in trace.outcomes:
        label = outcome.spec.label
        assert label not in views, f"duplicate cell: {label}"
        views[label] = deterministic_outcome_view(outcome.to_dict())
    return views


def spawn_worker(url, tmp_path, plan_path=None, worker_id=None):
    host_port = url.split("//", 1)[1]
    command = [sys.executable, "-m", "repro", "worker",
               "--connect", host_port, "--no-cache"]
    if plan_path is not None:
        command += ["--fault-plan", str(plan_path)]
    if worker_id is not None:
        command += ["--id", worker_id]
    return subprocess.Popen(command, cwd=str(tmp_path),
                            env=subprocess_env(),
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def test_fault_storm_fleet_matches_serial(tmp_path):
    """Crash + straggle + partition + silent abandonment, all at once.

    Every fault is charged exactly once (shared marker ledger), so each
    disturbed unit's re-dispatch succeeds; the straggler's late commit
    must come back as a duplicate, not a second result.
    """
    specs = grid_specs()
    truth = serial_views(specs)
    labels = [spec.label for spec in specs]
    plan = FabricFaultPlan.build(tmp_path / "state", {
        labels[0]: Fault(kind=CRASH_WORKER, times=1),
        labels[3]: Fault(kind=STRAGGLER, times=1, sleep_seconds=5.0),
        labels[6]: Fault(kind=PARTITION, times=1),
        labels[9]: Fault(kind=LEASE_LOSS, times=1),
    })
    plan_path = plan.to_file(tmp_path / "faults.json")

    config = CoordinatorConfig(
        journal_path=str(tmp_path / "j.jsonl"), cache_dir=None,
        use_cache=False, unit_cells=1, lease_ttl=1.5, steal_after=1.0,
        backoff_base=0.05, backoff_cap=0.5)
    coordinator = Coordinator(specs, config).start()
    procs = []
    try:
        procs = [spawn_worker(coordinator.url, tmp_path, plan_path,
                              worker_id=f"chaos{i}") for i in range(3)]
        assert coordinator.wait(timeout=240.0)
        # Let the straggler's late duplicate commit land before the
        # endpoint disappears.
        for proc in procs:
            proc.wait(timeout=60.0)
        trace = coordinator.trace(1.0, workers=3)
        status = coordinator.status()
    finally:
        coordinator.shutdown()
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    # Zero lost, zero duplicated, outcomes identical to serial.
    assert status["failed"] == 0
    views = fabric_views(trace)
    assert set(views) == set(labels)
    assert views == truth

    # The faults actually bit: the crashed/abandoned units expired and
    # were re-dispatched; the straggler's unit was stolen and its late
    # commit deduplicated.
    events = read_events(tmp_path / "j.jsonl")
    kinds = [e["event"] for e in events]
    assert kinds.count("expire") >= 2, kinds
    assert "steal" in kinds, kinds
    assert "duplicate" in kinds, kinds
    assert any(e["event"] == "lease" and e["attempt"] >= 2
               for e in events)
    # One worker died to the injected crash (exit 23), the rest saw
    # the grid complete.
    codes = sorted(proc.returncode for proc in procs)
    assert 23 in codes, codes
    assert codes.count(0) == 2, codes


def test_sigkilled_worker_unit_is_redispatched(tmp_path):
    """A worker SIGKILLed mid-lease loses its unit to the fleet, not
    to the run: the lease expires and another worker finishes it."""
    specs = grid_specs()
    truth = serial_views(specs)
    # A straggler fault pins one unit (with heartbeats) for seconds;
    # the journal names the worker holding it, and that one gets the
    # kill — so a held lease provably dies with its worker.  Stealing
    # is off: recovery must come from lease expiry alone.
    plan = FabricFaultPlan.build(tmp_path / "state", {
        specs[0].label: Fault(kind=STRAGGLER, times=1,
                              sleep_seconds=6.0),
    })
    plan_path = plan.to_file(tmp_path / "faults.json")
    config = CoordinatorConfig(
        journal_path=str(tmp_path / "j.jsonl"), cache_dir=None,
        use_cache=False, unit_cells=1, lease_ttl=1.5,
        steal_after=600.0, backoff_base=0.05, backoff_cap=0.5)
    coordinator = Coordinator(specs, config).start()
    procs = {}
    try:
        procs = {f"k{i}": spawn_worker(coordinator.url, tmp_path,
                                       plan_path, worker_id=f"k{i}")
                 for i in range(2)}
        victim, unit0 = None, None
        deadline = time.monotonic() + 60.0
        while victim is None and time.monotonic() < deadline:
            for event in read_events(tmp_path / "j.jsonl"):
                if event["event"] == "plan":
                    unit0 = next(i for i, unit
                                 in enumerate(event["units"])
                                 if 0 in unit)
                elif event["event"] == "lease" \
                        and event["unit"] == unit0:
                    victim = event["worker"]
            if victim is None:
                time.sleep(0.1)
        assert victim in procs, victim
        time.sleep(0.5)              # provably mid-straggle (6s sleep)
        procs[victim].send_signal(signal.SIGKILL)
        assert coordinator.wait(timeout=240.0)
        survivor = next(p for name, p in procs.items()
                        if name != victim)
        survivor.wait(timeout=60.0)
        trace = coordinator.trace(1.0, workers=2)
        status = coordinator.status()
    finally:
        coordinator.shutdown()
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()

    assert procs[victim].returncode == -signal.SIGKILL
    assert survivor.returncode == 0
    assert status["failed"] == 0
    assert fabric_views(trace) == truth
    events = read_events(tmp_path / "j.jsonl")
    assert any(e["event"] == "expire" and e["unit"] == unit0
               for e in events), "victim's lease never expired"
    assert any(e["event"] == "lease" and e["unit"] == unit0
               and e["worker"] != victim and e["attempt"] >= 2
               for e in events), "no re-dispatched lease journaled"


def test_coordinator_killed_and_resumed_from_journal(tmp_path):
    """Process-level: ``repro coordinate`` dies with the resumable exit
    code (5) right after a journaled commit; re-running the identical
    command resumes the grid from the journal and completes it without
    re-executing or losing the committed cells."""
    specs = grid_specs()
    truth = serial_views(specs)
    plan = FabricFaultPlan.build(tmp_path / "state", {
        specs[2].label: Fault(kind="coordinator_kill", times=1),
    })
    plan_path = plan.to_file(tmp_path / "faults.json")
    command = [sys.executable, "-m", "repro", "coordinate"] \
        + GRID_ARGS + [
        "--journal", str(tmp_path / "j.jsonl"), "--no-cache",
        "--spawn", "2", "--unit-cells", "1", "--lease-ttl", "2",
        "--trace", str(tmp_path / "trace.json"),
        "--fault-plan", str(plan_path)]

    first = subprocess.run(command, cwd=str(tmp_path),
                           env=subprocess_env(), capture_output=True,
                           text=True, timeout=240)
    assert first.returncode == 5, (first.returncode, first.stdout,
                                   first.stderr)

    rerun = subprocess.run(command, cwd=str(tmp_path),
                           env=subprocess_env(), capture_output=True,
                           text=True, timeout=240)
    assert rerun.returncode == 0, (rerun.returncode, rerun.stdout,
                                   rerun.stderr)
    assert "(resumed from journal)" in rerun.stdout
    # The killed run's committed cells came back from the journal, not
    # from re-execution (cache is off).
    banner = [line for line in rerun.stdout.splitlines()
              if "already resolved" in line][0]
    recovered = int(banner.split("journal)")[0].rsplit(",", 1)[1])
    assert recovered >= 1, banner

    import json
    trace = json.loads((tmp_path / "trace.json").read_text())
    views = {}
    for payload in trace["scenarios"]:
        label = payload["spec"]["label"]
        assert label not in views, f"duplicate cell: {label}"
        views[label] = deterministic_outcome_view(payload)
    assert views == truth
