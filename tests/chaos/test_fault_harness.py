"""Unit tests of the fault-injection harness itself."""

import json

import pytest

from repro.runner import ResultCache
from repro.testing import (
    CORRUPT_CASE,
    CRASH_WORKER,
    EXHAUST_BUDGET,
    HANG_WORKER,
    RAISE_ERROR,
    Fault,
    FaultPlan,
    FlakyResultCache,
    InjectedFault,
    corrupt_cached_outcome,
)
from repro.testing.faults import WORKER_KINDS, apply_fault


class TestFaultPlan:
    def test_single_plan_lookup(self, tmp_path):
        fault = Fault(RAISE_ERROR)
        plan = FaultPlan.single(tmp_path, "cell-a", fault)
        assert plan.fault_for("cell-a") == fault
        assert plan.fault_for("cell-b") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("meteor_strike")

    def test_attempt_counting_is_per_label(self, tmp_path):
        plan = FaultPlan(state_dir=str(tmp_path))
        assert plan.attempts("x") == 0
        assert plan.record_attempt("x") == 1
        assert plan.record_attempt("x") == 2
        assert plan.record_attempt("y") == 1
        assert plan.attempts("x") == 2

    def test_seeded_plans_are_deterministic(self, tmp_path):
        labels = [f"cell-{i}" for i in range(20)]
        one = FaultPlan.seeded(tmp_path, labels, seed=7, rate=0.5)
        two = FaultPlan.seeded(tmp_path, labels, seed=7, rate=0.5)
        assert one.faults == two.faults
        other = FaultPlan.seeded(tmp_path, labels, seed=8, rate=0.5)
        assert one.faults != other.faults

    def test_seeded_rate_and_kinds(self, tmp_path):
        labels = [f"cell-{i}" for i in range(30)]
        everything = FaultPlan.seeded(tmp_path, labels, seed=1, rate=1.0)
        assert len(everything.faults) == len(labels)
        assert all(f.kind in WORKER_KINDS for _, f in everything.faults)
        nothing = FaultPlan.seeded(tmp_path, labels, seed=1, rate=0.0)
        assert nothing.faults == ()
        only_errors = FaultPlan.seeded(tmp_path, labels, seed=1, rate=1.0,
                                       kinds=(RAISE_ERROR,))
        assert all(f.kind == RAISE_ERROR for _, f in only_errors.faults)

    def test_crash_worker_not_in_seeded_defaults(self):
        # Serial chaos sweeps run in the host process: a seeded plan must
        # never os._exit() the test runner by default.
        assert CRASH_WORKER not in WORKER_KINDS


class TestApplyFault:
    def test_exhaust_budget_overrides_payload_budget(self):
        payload = {"spec": {"label": "x"}, "fingerprint": "fp",
                   "budget": {"wall_seconds": 60.0}}
        apply_fault(Fault(EXHAUST_BUDGET), payload)
        assert payload["budget"]["wall_seconds"] == 0.0
        assert payload["budget"]["max_decisions"] == 1

    def test_corrupt_case_replaces_case_text(self):
        spec = {"label": "x", "case_text": "good"}
        payload = {"spec": spec, "fingerprint": "fp"}
        apply_fault(Fault(CORRUPT_CASE), payload)
        assert "not a case file" in payload["spec"]["case_text"]
        assert spec["case_text"] == "good"   # original spec untouched

    def test_raise_error_is_distinguishable(self):
        with pytest.raises(InjectedFault):
            apply_fault(Fault(RAISE_ERROR), {"spec": {"label": "x"}})

    def test_hang_sleeps_for_configured_time(self):
        import time
        started = time.perf_counter()
        apply_fault(Fault(HANG_WORKER, sleep_seconds=0.05),
                    {"spec": {"label": "x"}})
        assert time.perf_counter() - started >= 0.05


class TestCacheFaults:
    def test_flaky_cache_fails_then_recovers(self, tmp_path):
        cache = FlakyResultCache(tmp_path, fail_writes=2)
        with pytest.raises(OSError):
            cache.put("ab" * 32, {"status": "ok"})
        with pytest.raises(OSError):
            cache.put("ab" * 32, {"status": "ok"})
        cache.put("ab" * 32, {"status": "ok"})
        assert cache.get("ab" * 32) == {"status": "ok"}
        assert cache.write_attempts == 3

    def test_corrupt_cached_outcome_mangles_one_field(self, tmp_path):
        cache = ResultCache(tmp_path)
        fingerprint = "cd" * 32
        cache.put(fingerprint, {"status": "ok", "attempts": 1})
        corrupt_cached_outcome(cache, fingerprint, "attempts",
                               "not-a-number")
        envelope = json.loads(cache._path(fingerprint).read_text())
        assert envelope["fingerprint"] == fingerprint   # envelope valid
        assert envelope["outcome"]["attempts"] == "not-a-number"
        assert envelope["outcome"]["status"] == "ok"
