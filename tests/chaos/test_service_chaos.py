"""Chaos acceptance for the analysis service.

The contract under test: a 50-request mixed analyze/maximize load with
injected worker crashes, hangs, flaky-disk cache writes and dropped
connections must terminate with every request either *correct* (the
verdict matches an undisturbed in-process run) or *explicitly degraded*
(``budget_exhausted``/503-after-retries) — zero lost requests, zero
wrong verdicts.  Plus the process-level lifecycle: ``repro serve``
drains cleanly on SIGTERM (exit 0) and ``repro sweep`` checkpoints and
exits with the dedicated resumable code (5).
"""

import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.runner import ScenarioSpec
from repro.runner.engine import execute_scenario
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    ServiceUnavailable,
)
from repro.testing import (
    CRASH_WORKER,
    DROP_CONNECTION,
    FAIL_CACHE_WRITE,
    HANG_WORKER,
    Fault,
    ServiceFaultPlan,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

CASE = "5bus-study1"
TARGETS = ("1", "2", "3", "4", "5")     # I* = 4.25: 5% is unsat


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def build_load(total=50):
    """The 50-request mix: (label, kind, spec-dict) per request."""
    load = []
    for i in range(total):
        label = f"req{i:02d}"
        # Unique sample_seed per request: distinct fingerprints (no
        # blanket cache short-circuit) sharing one encoding group, so
        # the warm session pool does real work under the fault load.
        # The seed only steers state-infection sampling, which is off
        # here, so verdicts are seed-independent.
        if i % 5 == 4:
            spec = {"case": CASE, "analyzer": "fast", "label": label,
                    "tolerance": "1/4", "sample_seed": i}
            load.append((label, "maximize", spec))
        else:
            spec = {"case": CASE, "analyzer": "fast", "label": label,
                    "target": TARGETS[i % len(TARGETS)],
                    "sample_seed": i}
            load.append((label, "analyze", spec))
    return load


def expected_verdicts(load):
    """Undisturbed in-process ground truth per (kind, target)."""
    verdicts = {}
    for label, kind, spec in load:
        data = dict(spec)
        data.pop("label")
        key = (kind, data.get("target"))
        if key in verdicts:
            continue
        data["search"] = "maximize" if kind == "maximize" else "decision"
        outcome = execute_scenario(ScenarioSpec.build(
            data.pop("case"), analyzer=data.pop("analyzer"),
            target=data.pop("target", None),
            search=data.pop("search"),
            tolerance=data.pop("tolerance", None)))
        assert outcome.status == "ok", (key, outcome.error)
        istar = None
        if outcome.max_impact is not None:
            istar = outcome.max_impact["max_increase_percent"]
        verdicts[key] = (outcome.satisfiable, istar)
    return verdicts


def test_fifty_request_chaos_load_loses_nothing(tmp_path):
    load = build_load(50)
    truth = expected_verdicts(load)

    plan = ServiceFaultPlan.build(tmp_path / "state", {
        "req03": Fault(kind=CRASH_WORKER, times=1),
        "req17": Fault(kind=CRASH_WORKER, times=1),
        "req41": Fault(kind=CRASH_WORKER, times=1),
        "req08": Fault(kind=HANG_WORKER, times=1, sleep_seconds=30.0),
        "req23": Fault(kind=HANG_WORKER, times=1, sleep_seconds=30.0),
        "req05": Fault(kind=FAIL_CACHE_WRITE, times=1),
        "req11": Fault(kind=DROP_CONNECTION, times=1),
        "req29": Fault(kind=DROP_CONNECTION, times=1),
    })
    plan_path = plan.to_file(tmp_path / "plan.json")

    config = ServiceConfig(
        workers=2, queue_limit=50, request_timeout=15.0,
        hang_grace=0.5, retry_limit=1,
        cache_dir=str(tmp_path / "cache"), use_cache=True,
        fault_plan=str(plan_path))
    server = ServiceServer(port=0, config=config).start()
    try:
        outcomes = {}
        failures = {}
        lock = threading.Lock()

        def drive(chunk, seed):
            client = ServiceClient(server.url, retries=6,
                                   backoff_seconds=0.05,
                                   rng=random.Random(seed))
            for label, kind, spec in chunk:
                options = {"deadline_seconds": 5.0}
                try:
                    if kind == "maximize":
                        result = client.maximize(spec, **options)
                    else:
                        result = client.analyze(spec, **options)
                    with lock:
                        outcomes[label] = result
                except ServiceUnavailable as exc:
                    # Explicit degradation (503 after retries): allowed
                    # by the contract, but must be *visible*, not lost.
                    with lock:
                        failures[label] = exc

        ServiceClient(server.url).wait_ready(20.0)
        threads = [threading.Thread(
            target=drive, args=(load[i::4], 11 * i), daemon=True)
            for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "driver thread wedged"

        # Zero lost requests: every label is accounted for.
        assert len(outcomes) + len(failures) == len(load)

        # Zero wrong verdicts: every completed request matches the
        # undisturbed ground truth or is explicitly degraded.
        wrong = []
        degraded = []
        for label, kind, spec in load:
            if label not in outcomes:
                degraded.append(label)
                continue
            outcome = outcomes[label]["outcome"]
            if outcome["status"] == "unknown":
                degraded.append(label)      # budget_exhausted partial
                continue
            assert outcome["status"] == "ok", (label, outcome)
            want_sat, want_istar = truth[(kind, spec.get("target"))]
            if outcome["satisfiable"] != want_sat:
                wrong.append((label, "satisfiable"))
            if kind == "maximize" and want_istar is not None:
                got = outcome["max_impact"]["max_increase_percent"]
                if got != want_istar:
                    wrong.append((label, "istar", got, want_istar))
        assert not wrong, wrong

        # The injected faults actually happened and were survived.
        stats = server.supervisor.stats()
        health = server.supervisor.healthz()
        assert health["restarts"] >= 3, health
        assert stats["counters"]["retried"] >= 3
        assert server.http_stats()["dropped"] >= 1
        # Warm sessions did real work across the load.
        assert stats["totals"].get("session_hits", 0) > 0

        # Graceful shutdown still works after all that chaos.
        assert server.drain(timeout=30.0) is True
    finally:
        server.shutdown()


def test_serve_sigterm_drains_and_exits_zero(tmp_path):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", str(tmp_path / "cache"),
         "--drain-timeout", "30"],
        cwd=str(REPO_ROOT), env=subprocess_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        banner = proc.stdout.readline()
        assert "listening on http://" in banner, banner
        url = banner.split("listening on ", 1)[1].split()[0]
        client = ServiceClient(url, retries=4)
        client.wait_ready(20.0)

        results = []

        def inflight():
            results.append(client.maximize(
                {"case": CASE, "analyzer": "smt", "tolerance": "1/4"}))

        thread = threading.Thread(target=inflight, daemon=True)
        thread.start()
        time.sleep(0.3)             # let the request reach a worker
        proc.send_signal(signal.SIGTERM)
        thread.join(timeout=60)

        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 0, (proc.returncode, stdout, stderr)
        assert "drained cleanly" in stdout
        # The in-flight request finished correctly during the drain.
        assert results and results[0]["outcome"]["status"] == "ok"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_sweep_sigterm_checkpoints_and_exits_resumable(tmp_path):
    cache_dir = str(tmp_path / "cache")
    command = [sys.executable, "-m", "repro", "sweep",
               "--cases", CASE, "--analyzer", "smt",
               "--targets", "1,2,3,4,5,6,7,8,9,10,11,12",
               "--serial", "--cache-dir", cache_dir, "--trace", ""]
    proc = subprocess.Popen(command, cwd=str(REPO_ROOT),
                            env=subprocess_env(),
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    # The start banner prints after the SIGTERM handler is installed:
    # reading it removes the startup race, then the signal lands a few
    # cells into the ~4s sweep.
    banner = proc.stdout.readline()
    assert "scenario(s) queued" in banner, banner
    time.sleep(1.0)
    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 5, (proc.returncode, stdout, stderr)
    assert "checkpointed" in stderr
    assert "resume" in stderr

    # Resume: the re-run completes and serves the salvaged cells from
    # the checkpoint cache.
    rerun = subprocess.run(command, cwd=str(REPO_ROOT),
                           env=subprocess_env(), capture_output=True,
                           text=True, timeout=300)
    assert rerun.returncode == 0, (rerun.returncode, rerun.stdout,
                                   rerun.stderr)
    hits = [line for line in rerun.stdout.splitlines()
            if line.startswith("cache")]
    assert hits, rerun.stdout
    assert "0/12 hits" not in hits[0], hits[0]
