"""Property-based fuzzing of the preflight boundary.

The invariant: no corrupted case text may escape the parse → preflight
→ analyze path as an uncaught exception.  Every mutant must come back
either analyzed (``sat``/``unsat``) or rejected with structured
diagnostics — the whole point of the validation subsystem.
"""

import pytest

from repro.grid.caseio import write_case
from repro.grid.cases import get_case
from repro.testing import CaseFuzzer, ESCAPE
from repro.testing import fuzz as fuzz_module
from repro.testing.fuzz import fuzz_bundled_case, run_fuzz

#: the only statuses a mutant may produce.  ``unknown`` /
#: ``budget_exhausted`` are included for completeness (a budgeted run
#: may stop early); an ``escape`` is always a failure.
ALLOWED_STATUSES = {"sat", "unsat", "unknown", "budget_exhausted",
                    "invalid_input", "degenerate_case"}


class TestNoEscapes:
    # 300 + 150 + 60 = 510 seeded mutants per full run — comfortably
    # past the 500-mutant bar, split across cases and both analyzers.
    @pytest.mark.parametrize("case,analyzer,seed,iterations", [
        ("5bus-study1", "fast", 0, 300),
        ("ieee14", "fast", 1, 150),
        ("5bus-study1", "smt", 2, 60),
    ])
    def test_mutants_never_escape(self, case, analyzer, seed,
                                  iterations):
        report = fuzz_bundled_case(case, seed=seed,
                                   iterations=iterations,
                                   analyzer=analyzer)
        assert report.ok, report.render()
        assert sum(report.counts.values()) == iterations
        assert set(report.counts) <= ALLOWED_STATUSES
        # the stream must actually exercise the rejection paths, not
        # just produce analyzable near-copies.
        assert report.counts.get("invalid_input", 0) > 0

    def test_statuses_match_the_cli_exit_contract(self):
        # every rejection status the fuzzer can tally has a dedicated
        # CLI exit code; drift here would desynchronize CI gating.
        from repro.cli import EXIT_DEGENERATE_CASE, EXIT_INVALID_INPUT
        assert EXIT_INVALID_INPUT == 3
        assert EXIT_DEGENERATE_CASE == 4
        assert {"invalid_input", "degenerate_case"} <= ALLOWED_STATUSES


class TestFuzzerMechanics:
    def test_mutants_are_deterministic_and_addressable(self):
        text = write_case(get_case("5bus-study1"))
        one = CaseFuzzer(text, seed=9).mutant(17)
        two = CaseFuzzer(text, seed=9).mutant(17)
        assert one == two
        assert one.text != text
        assert one.mutations
        # a different seed reaches a different mutant
        assert CaseFuzzer(text, seed=10).mutant(17).text != one.text

    def test_escapes_are_captured_not_raised(self, monkeypatch):
        def boom(text, **kwargs):
            raise RuntimeError("driver bug")
        monkeypatch.setattr(fuzz_module, "analyze_text", boom)
        text = write_case(get_case("5bus-study1"))
        report = run_fuzz(text, iterations=3)
        assert not report.ok
        assert report.counts == {ESCAPE: 3}
        assert "RuntimeError: driver bug" in report.escapes[0].detail
        assert "ESCAPE at iteration 0" in report.render()

    def test_time_limit_truncates_instead_of_overshooting(self):
        text = write_case(get_case("5bus-study1"))
        report = run_fuzz(text, iterations=100_000, time_limit=0.0)
        assert report.truncated
        assert report.iterations < 100_000
        assert "[truncated by time limit]" in report.render()
