"""Chaos tests: the sweep engine must terminate with one outcome per
scenario no matter which faults are injected, and checkpoint/resume must
survive interrupts, full disks and corrupted cache entries."""

import pytest

from repro.runner import (
    ResultCache,
    ScenarioSpec,
    SweepConfig,
    SweepEngine,
)
from repro.runner.trace import (
    CRASHED,
    ERROR,
    INVALID_INPUT,
    OK,
    TIMEOUT,
    UNKNOWN,
    _KNOWN_STATUSES,
)
from repro.smt import SolverBudget
from repro.testing import (
    CORRUPT_CASE,
    CRASH_WORKER,
    EXHAUST_BUDGET,
    RAISE_ERROR,
    Fault,
    FaultPlan,
    FlakyResultCache,
    corrupt_cached_outcome,
    interrupt_after,
)

#: worker kinds that are safe in serial (in-host-process) execution.
SERIAL_KINDS = (RAISE_ERROR, CORRUPT_CASE, EXHAUST_BUDGET)


def _specs(n=4):
    """Cheap fast-analyzer scenarios with distinct labels."""
    return [
        ScenarioSpec.build("5bus-study1" if i % 2 == 0 else "5bus-study2",
                           analyzer="fast", target=1 + i // 2,
                           max_candidates=10, state_samples=4,
                           label=f"cell-{i}")
        for i in range(n)
    ]


def _smt_spec(label="smt-cell"):
    return ScenarioSpec.build("5bus-study1", analyzer="smt", target=1,
                              max_candidates=20, label=label)


class TestSeededChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_every_sweep_terminates_with_full_outcomes(self, tmp_path,
                                                       seed):
        specs = _specs(6)
        plan = FaultPlan.seeded(tmp_path / "plan", [s.label for s in specs],
                                seed=seed, rate=0.5, kinds=SERIAL_KINDS)
        engine = SweepEngine(SweepConfig(workers=1, use_cache=False),
                             task=plan.task())
        trace = engine.run(specs)           # must not raise
        assert len(trace.outcomes) == len(specs)
        assert [o.spec.label for o in trace.outcomes] \
            == [s.label for s in specs]
        faulted = {label for label, _ in plan.faults}
        for outcome in trace.outcomes:
            assert outcome.status in _KNOWN_STATUSES
            if outcome.spec.label in faulted:
                # CORRUPT_CASE now lands as a preflight rejection
                # (unparsable case text), not a bare worker error.
                assert outcome.status in (ERROR, UNKNOWN, INVALID_INPUT)
                assert outcome.error
            else:
                assert outcome.status == OK

    def test_same_seed_same_faults(self, tmp_path):
        labels = [s.label for s in _specs(6)]
        one = FaultPlan.seeded(tmp_path / "a", labels, seed=5, rate=0.5,
                               kinds=SERIAL_KINDS)
        two = FaultPlan.seeded(tmp_path / "b", labels, seed=5, rate=0.5,
                               kinds=SERIAL_KINDS)
        assert one.faults == two.faults


class TestBudgetExhaustionOutcomes:
    def test_unknown_outcome_with_partial_stats_not_cached(self, tmp_path):
        config = SweepConfig(workers=1,
                             cache_dir=str(tmp_path / "cache"),
                             budget=SolverBudget(max_decisions=1))
        spec = _smt_spec()
        first = SweepEngine(config).run([spec])
        outcome = first.outcomes[0]
        assert outcome.status == UNKNOWN
        assert "decision budget" in outcome.error
        # Partial statistics from the truncated search are preserved.
        assert outcome.trace["smt"]["solve_calls"] >= 1
        assert outcome.trace["smt"]["decisions"] >= 1
        assert first.to_dict()["totals"]["unknown"] == 1
        # UNKNOWN is budget-dependent: it must never be served from cache.
        second = SweepEngine(config).run([spec])
        assert second.cache_hits == 0
        assert second.outcomes[0].status == UNKNOWN

    def test_serial_task_timeout_enforced_in_solver(self, tmp_path):
        # The old engine could not enforce task_timeout in serial mode;
        # the in-solver deadline makes it work (and yields partial data
        # instead of a blunt kill).
        config = SweepConfig(workers=1, task_timeout=0.01,
                             use_cache=False)
        trace = SweepEngine(config).run([_smt_spec()])
        outcome = trace.outcomes[0]
        assert outcome.status == UNKNOWN
        assert "wall-clock" in outcome.error
        assert outcome.task_seconds < 5.0

    def test_parallel_budget_beats_pool_backstop(self, tmp_path):
        # Solver-bound tasks must come back UNKNOWN (with statistics),
        # not TIMEOUT: the pool wait allows the in-worker deadline grace.
        config = SweepConfig(workers=2, task_timeout=0.05,
                             use_cache=False)
        specs = [_smt_spec("p1"), _smt_spec("p2")]
        trace = SweepEngine(config).run(specs)
        assert len(trace.outcomes) == 2
        for outcome in trace.outcomes:
            assert outcome.status == UNKNOWN
            assert "wall-clock" in outcome.error

    def test_injected_budget_exhaustion_fault(self, tmp_path):
        specs = _specs(2)
        plan = FaultPlan.single(tmp_path / "plan", "cell-0",
                                Fault(EXHAUST_BUDGET))
        engine = SweepEngine(SweepConfig(workers=1, use_cache=False),
                             task=plan.task())
        trace = engine.run(specs)
        assert trace.outcomes[0].status == UNKNOWN
        assert trace.outcomes[1].status == OK


class TestCheckpointResume:
    def test_interrupt_then_resume_serves_completed_cells(self, tmp_path):
        specs = _specs(4)
        config = SweepConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        interrupted = SweepEngine(
            config, task=interrupt_after(tmp_path / "state", 2))
        with pytest.raises(KeyboardInterrupt):
            interrupted.run(specs)
        # The two completed cells were checkpointed before the interrupt.
        resumed = SweepEngine(config).run(specs)
        assert resumed.cache_hits >= 2
        assert [o.status for o in resumed.outcomes] == [OK] * 4

    def test_cache_write_failure_degrades_to_warning(self, tmp_path):
        specs = _specs(2)
        cache = FlakyResultCache(tmp_path / "cache", fail_writes=10 ** 6)
        engine = SweepEngine(SweepConfig(workers=1), cache=cache)
        trace = engine.run(specs)           # must not raise
        for outcome in trace.outcomes:
            assert outcome.status == OK
            assert "No space left on device" in outcome.cache_write_error
        assert trace.to_dict()["totals"]["cache_write_errors"] == 2
        # Nothing was persisted, so a second run recomputes.
        assert SweepEngine(SweepConfig(workers=1),
                           cache=cache).run(specs).cache_hits == 0

    def test_transient_cache_write_failure_recovers(self, tmp_path):
        # A single flaky-disk failure is absorbed by try_put's bounded
        # retry with backoff: no cell degrades to cache_write_error and
        # every checkpoint lands on disk within the first run.
        specs = _specs(2)
        cache = FlakyResultCache(tmp_path / "cache", fail_writes=1)
        engine = SweepEngine(SweepConfig(workers=1), cache=cache)
        first = engine.run(specs)
        assert [o.cache_write_error for o in first.outcomes] \
            == [None, None]
        # 1 injected failure + its retry + the second cell's write.
        assert cache.write_attempts == 3
        second = SweepEngine(SweepConfig(workers=1),
                             cache=ResultCache(tmp_path / "cache"))
        assert second.run(specs).cache_hits == 2

    def test_persistent_cache_write_failure_still_degrades(self,
                                                           tmp_path):
        # Exhausting every retry (fail_writes > retries) falls back to
        # the pre-retry contract: the outcome stands, the checkpoint is
        # lost, and the degradation is reported per outcome.
        specs = _specs(1)
        cache = FlakyResultCache(tmp_path / "cache", fail_writes=3)
        trace = SweepEngine(SweepConfig(workers=1), cache=cache).run(specs)
        assert "No space left on device" \
            in trace.outcomes[0].cache_write_error
        assert cache.write_attempts == 3    # initial + 2 retries

    def test_malformed_cached_outcome_is_recomputed(self, tmp_path):
        specs = _specs(2)
        cache = ResultCache(tmp_path / "cache")
        config = SweepConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        SweepEngine(config).run(specs)
        corrupt_cached_outcome(cache, specs[0].fingerprint(),
                               "status", "not-a-status")
        trace = SweepEngine(config).run(specs)
        assert trace.cache_hits == 1        # only the intact entry
        assert [o.status for o in trace.outcomes] == [OK, OK]
        # The recomputation overwrote the corrupt entry.
        assert SweepEngine(config).run(specs).cache_hits == 2

    def test_wrong_typed_field_in_cache_is_recomputed(self, tmp_path):
        specs = _specs(1)
        cache = ResultCache(tmp_path / "cache")
        config = SweepConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        SweepEngine(config).run(specs)
        corrupt_cached_outcome(cache, specs[0].fingerprint(),
                               "satisfiable", "yes")
        trace = SweepEngine(config).run(specs)
        assert trace.cache_hits == 0
        assert trace.outcomes[0].status == OK


class TestCrashChaos:
    def test_crash_once_is_retried_to_success(self, tmp_path):
        specs = _specs(2)
        plan = FaultPlan.single(tmp_path / "plan", "cell-0",
                                Fault(CRASH_WORKER, times=1))
        engine = SweepEngine(
            SweepConfig(workers=2, retries=2, use_cache=False),
            task=plan.task())
        trace = engine.run(specs)
        assert [o.status for o in trace.outcomes] == [OK, OK]
        assert plan.attempts("cell-0") == 2

    def test_persistent_crash_is_recorded_after_retries(self, tmp_path):
        # Single spec: a neighbour sharing the pool can legitimately get
        # dragged down by repeated pool breakage, so isolate the crasher.
        specs = _specs(2)
        plan = FaultPlan.single(tmp_path / "plan", "cell-0",
                                Fault(CRASH_WORKER, times=10))
        engine = SweepEngine(
            SweepConfig(workers=2, retries=1, use_cache=False),
            task=plan.task())
        trace = engine.run([specs[0], specs[0]])
        outcome = trace.outcomes[0]
        assert outcome.status == CRASHED
        assert outcome.attempts == 2
        assert "died" in outcome.error or outcome.error
