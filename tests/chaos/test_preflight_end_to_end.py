"""End-to-end consistency of preflight rejections.

An islanding line-exclusion attack on the five-bus case (lines 2-3 and
3-4 taken out of the true topology, stranding bus 3) must surface as
``degenerate_case`` identically everywhere: the ``analyze`` CLI exit
code, the sweep engine's outcome, the on-disk result cache, and the
``--strict`` gate.
"""

import pytest

from repro.cli import EXIT_DEGENERATE_CASE, EXIT_INVALID_INPUT, main
from repro.grid.caseio import parse_case, write_case
from repro.grid.cases import get_case
from repro.runner import ScenarioSpec, SweepConfig, SweepEngine
from repro.runner.trace import DEGENERATE_CASE


def islanded_text() -> str:
    """Five-bus case text with bus 3 islanded (lines 3 and 6 opened)."""
    text = write_case(get_case("5bus-study1"))
    text = text.replace("3 2 3 5.05 0.05 1 1 1 1 1",
                        "3 2 3 5.05 0.05 1 0 1 1 1")
    return text.replace("6 3 4 5.85 0.2 1 1 0 0 1",
                        "6 3 4 5.85 0.2 1 0 0 0 1")


class TestAnalyzeCli:
    def test_islanded_case_exits_degenerate(self, tmp_path, capsys):
        path = tmp_path / "islanded.case"
        path.write_text(islanded_text())
        code = main(["analyze", "--input", str(path)])
        assert code == EXIT_DEGENERATE_CASE
        out = capsys.readouterr().out
        assert "degenerate case" in out
        assert "topology.disconnected" in out
        assert "topology.isolated_bus" in out

    def test_malformed_case_exits_invalid(self, tmp_path, capsys):
        path = tmp_path / "bad.case"
        path.write_text(islanded_text().replace("5.05", "1/0"))
        code = main(["analyze", "--input", str(path)])
        assert code == EXIT_INVALID_INPUT
        err = capsys.readouterr().err
        assert "parse.malformed" in err
        assert "topology[2].admittance" in err


class TestSweepCacheAndStrict:
    def _spec(self):
        return ScenarioSpec.build("islanded-5bus", analyzer="fast",
                                  case_text=islanded_text())

    def test_rejection_is_cached_and_served(self, tmp_path):
        config = SweepConfig(workers=1,
                             cache_dir=str(tmp_path / "cache"),
                             use_cache=True)
        first = SweepEngine(config).run([self._spec()])
        outcome = first.outcomes[0]
        assert outcome.status == DEGENERATE_CASE
        assert not outcome.cache_hit
        assert outcome.error and "topology.disconnected" in outcome.error
        report = outcome.diagnostics_report()
        assert report is not None
        assert report.fatal_status() == DEGENERATE_CASE
        assert "topology.disconnected" in report.codes()

        # a second sweep serves the identical verdict from cache,
        # diagnostics included — rejections are deterministic verdicts.
        second = SweepEngine(config).run([self._spec()])
        served = second.outcomes[0]
        assert served.cache_hit
        assert served.status == DEGENERATE_CASE
        assert served.diagnostics == outcome.diagnostics

    def test_cli_strict_gate_counts_degenerate(self, monkeypatch,
                                               capsys):
        # the sweep CLI only takes bundled case names; swap the bundled
        # five-bus for its islanded variant (serial mode keeps
        # everything in-process, so the patch holds).
        islanded = parse_case(islanded_text(), name="5bus-study1")
        import repro.grid.cases as cases_module
        monkeypatch.setattr(cases_module, "get_case",
                            lambda name: islanded)

        argv = ["sweep", "--cases", "5bus-study1", "--serial",
                "--no-cache"]
        assert main(argv) == 1          # a failure, but not gated
        capsys.readouterr()
        assert main(argv + ["--strict"]) == 2
        out = capsys.readouterr().out
        assert "degenerate_case" in out
        assert "STRICT" in out
        assert "preflight" in out
