"""DefensePlanner: rebuild fidelity and minimal countermeasure sets.

The regression class pins the satellite bugfix: case rebuilds go
through ``dataclasses.replace``, so *every* field — ``reference_bus``
in particular, which the old hand-rolled ``_rebuild`` in
``examples/defense_planning.py`` silently reset to 1 — survives a
countermeasure transform.
"""

from dataclasses import fields, replace
from fractions import Fraction

import pytest

from repro.defense import (
    DefensePlanner,
    SecureLineStatus,
    SecureMeasurement,
    TightenBudgets,
    default_candidates,
    with_budgets,
    with_secured_line,
    with_secured_measurement,
)
from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.smt.budget import SolverBudget


def _case_with_reference_bus(bus: int):
    return replace(get_case("5bus-study1"), reference_bus=bus)


class TestRebuildPreservesEveryField:
    """Satellite regression: fails on the pre-fix field-copying rebuild."""

    def test_secured_line_keeps_nondefault_reference_bus(self):
        case = _case_with_reference_bus(3)
        defended = with_secured_line(case, 6)
        assert defended.reference_bus == 3

    def test_secured_measurement_keeps_nondefault_reference_bus(self):
        case = _case_with_reference_bus(3)
        defended = with_secured_measurement(case, 17)
        assert defended.reference_bus == 3

    def test_budget_cut_keeps_nondefault_reference_bus(self):
        case = _case_with_reference_bus(3)
        defended = with_budgets(case, 3, 1)
        assert defended.reference_bus == 3

    def test_every_untouched_field_round_trips(self):
        """Field-exhaustive: any future CaseDefinition field must
        survive the rebuild too (the root cause of the original bug was
        a hand-maintained field list going stale)."""
        case = _case_with_reference_bus(4)
        transforms = [
            (with_secured_line, (6,), {"name", "line_specs"}),
            (with_secured_measurement, (6,),
             {"name", "measurement_specs"}),
            (with_budgets, (3, 1),
             {"name", "resource_measurements", "resource_buses"}),
        ]
        for transform, args, touched in transforms:
            defended = transform(case, *args)
            for spec_field in fields(case):
                if spec_field.name in touched:
                    continue
                assert getattr(defended, spec_field.name) == \
                    getattr(case, spec_field.name), \
                    f"{transform.__name__} dropped {spec_field.name}"

    def test_secured_measurement_touches_only_the_target(self):
        case = get_case("5bus-study1")
        defended = with_secured_measurement(case, 6)
        for before, after in zip(case.measurement_specs,
                                 defended.measurement_specs):
            if before.index == 6:
                assert after.secured and not before.secured
                assert (after.taken, after.alterable) == \
                    (before.taken, before.alterable)
            else:
                assert after == before

    def test_defended_nondefault_slack_analyzes_consistently(self):
        """End-to-end: with the old bug, securing a measurement on a
        reference_bus=3 case silently analyzed a *different grid* (slack
        back at bus 1).  The defended case must keep the undefended
        case's base OPF cost — securing a channel never moves the
        slack."""
        from repro.core import FastImpactAnalyzer
        case = _case_with_reference_bus(3)
        base = FastImpactAnalyzer(case)
        defended = FastImpactAnalyzer(with_secured_measurement(case, 7))
        assert base.session.base_cost() == defended.session.base_cost()


class TestDefaultCandidates:
    def test_only_attacker_reachable_channels(self):
        case = get_case("5bus-study1")
        candidates = default_candidates(case)
        labels = {c.label for c in candidates}
        assert "secure-line-6" in labels
        for candidate in candidates:
            if isinstance(candidate, SecureLineStatus):
                spec = next(s for s in case.line_specs
                            if s.index == candidate.line)
                assert spec.status_alterable and not spec.status_secured
        # already-secured or untaken measurements are never candidates
        secured = with_secured_measurement(case, 6)
        assert "secure-m6" not in \
            {c.label for c in default_candidates(secured)}


class TestPlannerOnCaseStudy:
    def test_secured_line_kills_the_case_study_attack(self):
        planner = DefensePlanner(get_case("5bus-study1"), target=3,
                                 max_candidates=20)
        plan = planner.plan([SecureLineStatus(6), SecureMeasurement(7)])
        assert plan.status == "blocked"
        assert [c.label for c in plan.selected] == ["secure-line-6"]
        assert plan.blocked

    def test_selected_set_is_one_minimal(self):
        case = get_case("5bus-study1")
        planner = DefensePlanner(case, target=3, max_candidates=20)
        candidates = [SecureLineStatus(6), SecureMeasurement(6),
                      SecureMeasurement(17), SecureMeasurement(7)]
        plan = planner.plan(candidates)
        assert plan.status == "blocked"
        assert plan.selected
        # dropping any selected member must revive the attack
        for dropped in plan.selected:
            weakened = case
            for measure in plan.selected:
                if measure != dropped:
                    weakened = measure.apply(weakened)
            assert planner.attack_survives(weakened) is True

    def test_already_secure_and_unblockable(self):
        case = get_case("5bus-study1")
        secure = DefensePlanner(case, target=50).plan()
        assert secure.status == "already_secure"
        assert secure.selected == ()
        hopeless = DefensePlanner(case, target=3,
                                  max_candidates=20).plan([])
        assert hopeless.status == "unblockable"

    def test_warm_sessions_are_reused_across_repeat_probes(self):
        # With a single candidate, the greedy elimination re-probes the
        # undefended case — that must hit the session pool, not rebuild.
        planner = DefensePlanner(get_case("5bus-study1"), target=3,
                                 max_candidates=20)
        plan = planner.plan([SecureLineStatus(6)])
        assert plan.status == "blocked"
        assert plan.sessions_reused >= 1
        assert plan.sessions_built == 2   # undefended + defended

    def test_budget_exhaustion_is_inconclusive_not_blocked(self):
        planner = DefensePlanner(
            get_case("5bus-study1"), target=3,
            budget=SolverBudget(wall_seconds=1e-9))
        plan = planner.plan([SecureLineStatus(6)])
        assert plan.status == "inconclusive"
        assert not plan.blocked
        assert plan.probes[0]["status"] == "budget_exhausted"

    def test_fast_analyzer_agrees_on_the_blocking_set(self):
        planner = DefensePlanner(get_case("5bus-study1"), target=3,
                                 analyzer="fast")
        plan = planner.plan([SecureLineStatus(6), SecureMeasurement(7)])
        assert plan.status == "blocked"
        assert [c.label for c in plan.selected] == ["secure-line-6"]

    def test_to_dict_is_json_clean(self):
        import json
        planner = DefensePlanner(get_case("5bus-study1"), target=3,
                                 analyzer="fast")
        plan = planner.plan([SecureLineStatus(6)])
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["status"] == "blocked"
        assert payload["selected"] == ["secure-line-6"]
        assert payload["sessions_built"] == plan.sessions_built

    def test_unknown_analyzer_kind_rejected(self):
        with pytest.raises(ModelError):
            DefensePlanner(get_case("5bus-study1"), analyzer="magic")

    def test_budget_countermeasure_tightens_resources(self):
        case = get_case("5bus-study1")
        defended = TightenBudgets(3, 1).apply(case)
        assert defended.resource_measurements == 3
        assert defended.resource_buses == 1
        assert defended.reference_bus == case.reference_bus

    def test_target_defaults_to_case_min_increase(self):
        planner = DefensePlanner(get_case("5bus-study1"),
                                 analyzer="fast")
        assert planner.target == Fraction(
            get_case("5bus-study1").min_increase_percent)
