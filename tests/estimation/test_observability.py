"""Tests for observability analysis."""

import pytest

from repro.estimation.measurement import MeasurementPlan
from repro.estimation.observability import (
    is_numerically_observable,
    is_topologically_observable,
    observable_islands,
    redundancy_level,
)
from repro.grid.caseio import MeasurementSpec
from repro.grid.cases import get_case


@pytest.fixture
def grid():
    return get_case("5bus-study1").build_grid()


def plan_with(grid, taken):
    total = grid.num_potential_measurements
    specs = [MeasurementSpec(i, i in taken, False, True)
             for i in range(1, total + 1)]
    return MeasurementPlan(grid, specs)


class TestNumerical:
    def test_case_plans_observable(self):
        for name in ("5bus-study1", "5bus-study2", "ieee14", "ieee30"):
            case = get_case(name)
            plan = MeasurementPlan.from_case(case)
            assert is_numerically_observable(plan), name

    def test_too_few_measurements(self, grid):
        plan = plan_with(grid, {1, 2})
        assert not is_numerically_observable(plan)

    def test_flow_spanning_tree_is_observable(self, grid):
        # Forward flow measurements on a spanning tree: lines 1,3,4,5.
        plan = plan_with(grid, {1, 3, 4, 5})
        assert is_numerically_observable(plan)

    def test_redundant_flows_on_same_line_do_not_help(self, grid):
        # Forward + backward of lines 1 and 3 only: 4 measurements but
        # only 2 independent rows.
        plan = plan_with(grid, {1, 3, 8, 10})
        assert not is_numerically_observable(plan)

    def test_respects_topology_argument(self, grid):
        plan = plan_with(grid, {1, 3, 4, 5})
        # Without line 5 in the topology, its flow measurement is dead.
        assert not is_numerically_observable(plan,
                                             topology=[1, 2, 3, 4, 6, 7])


class TestTopological:
    def test_spanning_flows(self, grid):
        plan = plan_with(grid, {1, 3, 4, 5})
        assert is_topologically_observable(plan)
        assert len(observable_islands(plan)) == 1

    def test_islands_without_full_coverage(self, grid):
        plan = plan_with(grid, {1, 3})  # lines 1-2, 2-3 measured
        islands = observable_islands(plan)
        assert {1, 2, 3} in islands
        assert not is_topologically_observable(plan)

    def test_injection_stitches_islands(self, grid):
        # Flows on lines 1 (1-2), 3 (2-3), 7 (4-5) leave two islands
        # {1,2,3} and {4,5}; a consumption measurement at bus 3 whose only
        # boundary line is 6 (3-4) merges them.
        plan = plan_with(grid, {1, 3, 7, 17})
        assert is_topologically_observable(plan)

    def test_injection_with_two_boundary_lines_cannot_stitch(self, grid):
        # Consumption at bus 2 sees two boundary lines (4: 2-4, 5: 2-5):
        # ambiguous, no merge.
        plan = plan_with(grid, {1, 3, 7, 16})
        assert not is_topologically_observable(plan)

    def test_topological_implies_numerical(self, grid):
        # Sanity: on several random-ish plans, topological observability
        # implies numerical observability (the converse can fail).
        candidate_sets = [
            {1, 3, 4, 5}, {1, 3, 7, 17}, {2, 3, 4, 6}, {1, 2, 6, 7, 16},
        ]
        for taken in candidate_sets:
            plan = plan_with(grid, taken)
            if is_topologically_observable(plan):
                assert is_numerically_observable(plan), taken


class TestRedundancy:
    def test_level(self, grid):
        plan = MeasurementPlan.full(grid)
        assert redundancy_level(plan) == pytest.approx(19 / 4)

    def test_case_redundancy_above_one(self):
        case = get_case("5bus-study1")
        plan = MeasurementPlan.from_case(case)
        assert redundancy_level(plan) > 1
