"""Tests for WLS estimation and bad-data detection, including the
stealthiness invariant that underpins the whole paper."""

import numpy as np
import pytest

from repro.estimation.bdd import BadDataDetector
from repro.estimation.measurement import MeasurementPlan, TelemetrySimulator
from repro.estimation.wls import WlsEstimator
from repro.exceptions import ModelError, NotObservableError
from repro.grid.caseio import MeasurementSpec
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.grid.dcpf import solve_dc_power_flow
from repro.grid.matrices import measurement_matrix


@pytest.fixture
def setup():
    case = get_case("5bus-study1")
    grid = case.build_grid()
    plan = MeasurementPlan.from_case(case, grid)
    dispatch = {b: float(p) for b, p in proportional_dispatch(
        list(grid.generators.values()), grid.total_load()).items()}
    pf = solve_dc_power_flow(grid, dispatch)
    return case, grid, plan, dispatch, pf


class TestWls:
    def test_noise_free_estimation_is_exact(self, setup):
        _, grid, plan, dispatch, pf = setup
        simulator = TelemetrySimulator(plan, sigma=0.0)
        z = simulator.readings(pf.flows, pf.consumption)
        estimate = WlsEstimator(plan).estimate(z)
        for bus, angle in pf.angles.items():
            assert estimate.angles[bus] == pytest.approx(angle, abs=1e-9)
        for line, flow in pf.flows.items():
            assert estimate.flows[line] == pytest.approx(flow, abs=1e-9)
        assert estimate.residual_norm == pytest.approx(0.0, abs=1e-9)

    def test_estimated_loads_recover_demands(self, setup):
        _, grid, plan, dispatch, pf = setup
        z = TelemetrySimulator(plan, sigma=0.0).readings(
            pf.flows, pf.consumption)
        estimate = WlsEstimator(plan).estimate(z)
        loads = estimate.estimated_loads(grid, dispatch)
        for bus, load in grid.loads.items():
            assert loads[bus] == pytest.approx(float(load.existing),
                                               abs=1e-9)

    def test_small_noise_small_error(self, setup):
        _, grid, plan, dispatch, pf = setup
        z = TelemetrySimulator(plan, sigma=0.002, seed=7).readings(
            pf.flows, pf.consumption)
        estimate = WlsEstimator(plan).estimate(z)
        for bus, angle in pf.angles.items():
            assert estimate.angles[bus] == pytest.approx(angle, abs=0.01)

    def test_unobservable_plan_rejected(self, setup):
        _, grid, _, _, _ = setup
        # Only one measurement: nowhere near observable.
        specs = [MeasurementSpec(i, i == 1, False, True)
                 for i in range(1, 20)]
        plan = MeasurementPlan(grid, specs)
        with pytest.raises(NotObservableError):
            WlsEstimator(plan)

    def test_wrong_reading_count_rejected(self, setup):
        _, _, plan, _, _ = setup
        estimator = WlsEstimator(plan)
        with pytest.raises(ModelError):
            estimator.estimate(np.zeros(3))


class TestBadDataDetection:
    def test_clean_readings_pass(self, setup):
        _, grid, plan, dispatch, pf = setup
        sigma = 0.004
        z = TelemetrySimulator(plan, sigma=sigma, seed=3).readings(
            pf.flows, pf.consumption)
        detector = BadDataDetector(WlsEstimator(plan), sigma=sigma)
        report = detector.test(z)
        assert not report.detected

    def test_gross_error_detected_and_identified(self, setup):
        _, grid, plan, dispatch, pf = setup
        sigma = 0.004
        z = TelemetrySimulator(plan, sigma=sigma, seed=3).readings(
            pf.flows, pf.consumption)
        taken = plan.taken_indices()
        corrupt_position = taken.index(6)
        z[corrupt_position] += 0.5  # gross error on m6
        detector = BadDataDetector(WlsEstimator(plan), sigma=sigma)
        report = detector.test(z)
        assert report.detected
        assert report.suspect_index is not None

    def test_stealthy_attack_preserves_residual(self, setup):
        """a = Hc leaves the residual unchanged (paper Section II-B)."""
        _, grid, plan, dispatch, pf = setup
        sigma = 0.004
        z = TelemetrySimulator(plan, sigma=sigma, seed=5).readings(
            pf.flows, pf.consumption)
        taken = plan.taken_indices()
        H = measurement_matrix(grid)[[i - 1 for i in taken], :]
        rng = np.random.default_rng(1)
        c = rng.normal(0, 0.05, H.shape[1])
        attack = H @ c
        detector = BadDataDetector(WlsEstimator(plan), sigma=sigma)
        assert detector.residual_unchanged_by(z, attack)
        assert not detector.test(z + attack).detected

    def test_non_stealthy_attack_changes_residual(self, setup):
        _, grid, plan, dispatch, pf = setup
        z = TelemetrySimulator(plan, sigma=0.004, seed=5).readings(
            pf.flows, pf.consumption)
        attack = np.zeros(len(z))
        attack[0] = 0.4
        detector = BadDataDetector(WlsEstimator(plan), sigma=0.004)
        assert not detector.residual_unchanged_by(z, attack)

    def test_invalid_parameters(self, setup):
        _, _, plan, _, _ = setup
        estimator = WlsEstimator(plan)
        with pytest.raises(ModelError):
            BadDataDetector(estimator, significance=2)
        with pytest.raises(ModelError):
            BadDataDetector(estimator, sigma=0)
