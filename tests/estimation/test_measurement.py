"""Tests for the measurement catalog, plans and telemetry simulation."""

import numpy as np
import pytest

from repro.estimation.measurement import (
    MeasurementPlan,
    MeasurementType,
    TelemetrySimulator,
    measurement_catalog,
)
from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.grid.dcpf import solve_dc_power_flow


@pytest.fixture
def case():
    return get_case("5bus-study1")


@pytest.fixture
def grid(case):
    return case.build_grid()


@pytest.fixture
def plan(case, grid):
    return MeasurementPlan.from_case(case, grid)


class TestCatalog:
    def test_count_is_2l_plus_b(self, grid):
        catalog = measurement_catalog(grid)
        assert len(catalog) == 2 * 7 + 5

    def test_paper_numbering(self, grid):
        catalog = measurement_catalog(grid)
        # m6: forward flow of line 6, at its from-bus 3.
        m6 = catalog[5]
        assert m6.mtype is MeasurementType.FORWARD_FLOW
        assert m6.line_index == 6 and m6.location_bus == 3
        # m13: backward flow of line 6, at its to-bus 4.
        m13 = catalog[12]
        assert m13.mtype is MeasurementType.BACKWARD_FLOW
        assert m13.line_index == 6 and m13.location_bus == 4
        # m17: consumption at bus 3.
        m17 = catalog[16]
        assert m17.mtype is MeasurementType.BUS_CONSUMPTION
        assert m17.bus_index == 3 and m17.location_bus == 3


class TestPlan:
    def test_flags_from_case(self, plan):
        assert not plan.is_taken(4)
        assert plan.is_secured(1)
        assert plan.is_alterable(6)
        assert not plan.is_alterable(1)

    def test_taken_indices(self, plan):
        taken = plan.taken_indices()
        assert 4 not in taken and 8 not in taken
        assert len(taken) == 15

    def test_locations(self, plan):
        assert plan.location_of(6) == 3
        assert plan.location_of(13) == 4
        assert plan.location_of(19) == 5
        assert set(plan.measurements_at(3)) == {6, 10, 17}

    def test_line_and_bus_helpers(self, plan):
        assert plan.flow_measurements_of_line(6) == (6, 13)
        assert plan.consumption_measurement_of_bus(3) == 17

    def test_full_plan(self, grid):
        plan = MeasurementPlan.full(grid)
        assert len(plan.taken_indices()) == 19
        assert all(plan.is_alterable(i) for i in range(1, 20))

    def test_wrong_spec_count_rejected(self, grid, case):
        with pytest.raises(ModelError):
            MeasurementPlan(grid, case.measurement_specs[:-1])

    def test_describe(self, plan):
        assert "line 6" in plan.describe(6)
        assert "bus 3" in plan.describe(17)


class TestTelemetry:
    def test_noise_free_values_match_physics(self, grid, plan):
        dispatch = {b: float(p) for b, p in proportional_dispatch(
            list(grid.generators.values()), grid.total_load()).items()}
        pf = solve_dc_power_flow(grid, dispatch)
        simulator = TelemetrySimulator(plan, sigma=0.0)
        values = simulator.true_values(pf.flows, pf.consumption)
        assert values[5] == pytest.approx(pf.flow(6))       # m6 forward
        assert values[12] == pytest.approx(-pf.flow(6))     # m13 backward
        assert values[16] == pytest.approx(pf.consumption[3])  # m17

    def test_readings_only_for_taken(self, grid, plan):
        simulator = TelemetrySimulator(plan, sigma=0.0)
        readings = simulator.readings({}, {})
        assert len(readings) == len(plan.taken_indices())

    def test_noise_is_seeded(self, grid, plan):
        a = TelemetrySimulator(plan, sigma=0.01, seed=42).readings({}, {})
        b = TelemetrySimulator(plan, sigma=0.01, seed=42).readings({}, {})
        assert np.allclose(a, b)
        c = TelemetrySimulator(plan, sigma=0.01, seed=43).readings({}, {})
        assert not np.allclose(a, c)

    def test_negative_sigma_rejected(self, plan):
        with pytest.raises(ModelError):
            TelemetrySimulator(plan, sigma=-1)
