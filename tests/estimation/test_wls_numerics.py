"""Numerical-integrity regressions for the WLS estimator: matrix-scaled
rank tolerance on the gain matrix and the solve-based (never
stored-inverse) hat matrix / residual sensitivity."""

from dataclasses import replace
from fractions import Fraction

import numpy as np
import pytest

from repro.estimation.measurement import MeasurementPlan, TelemetrySimulator
from repro.estimation.wls import WlsEstimator
from repro.exceptions import NotObservableError
from repro.grid.cases import get_case
from repro.grid.cases.builders import proportional_dispatch
from repro.grid.dcpf import solve_dc_power_flow


def _bus3_weak_case(factor):
    """5bus-study1 with bus 3's only incident lines (3 and 6) scaled.

    At small factors every measurement touching the bus-3 angle carries
    a near-vanishing coefficient, so the gain matrix is numerically
    rank-deficient even though it is full rank in exact arithmetic.
    """
    base = get_case("5bus-study1")
    case = replace(base, line_specs=list(base.line_specs),
                   measurement_specs=list(base.measurement_specs))
    scale = Fraction(factor).limit_denominator(10 ** 12)
    for index in (3, 6):
        spec = case.line_specs[index - 1]
        case.line_specs[index - 1] = replace(
            spec, admittance=spec.admittance * scale)
    return case


class TestScaledRankTolerance:
    def test_near_unobservable_plan_rejected(self):
        # numpy's machine-epsilon rank default calls this gain matrix
        # full rank; the matrix-scaled cutoff must reject the plan
        # instead of estimating through a near-singular inverse.
        grid = _bus3_weak_case(1e-4).build_grid()
        plan = MeasurementPlan.full(grid)
        gain_rank = np.linalg.matrix_rank(_gain_of(plan))
        assert gain_rank == grid.num_buses - 1  # numpy says observable
        with pytest.raises(NotObservableError) as excinfo:
            WlsEstimator(plan)
        assert "unobservable" in str(excinfo.value)

    def test_healthy_plan_still_accepted(self):
        grid = _bus3_weak_case(1).build_grid()
        estimator = WlsEstimator(MeasurementPlan.full(grid))
        assert estimator.H.shape[1] == grid.num_buses - 1


def _gain_of(plan):
    from repro.grid.matrices import measurement_matrix

    full = measurement_matrix(
        plan.grid, [l.index for l in plan.grid.lines if l.in_service])
    H = full[[i - 1 for i in plan.taken_indices()], :]
    return H.T @ H


class TestHatMatrix:
    @pytest.fixture
    def estimator(self):
        case = get_case("5bus-study1")
        grid = case.build_grid()
        plan = MeasurementPlan.from_case(case, grid)
        taken = len(plan.taken_indices())
        weights = np.linspace(1.0, 2.0, taken)  # non-trivial W
        return WlsEstimator(plan, weights=weights)

    def test_matches_explicit_inverse_formula(self, estimator):
        gain = estimator.H.T @ estimator.W @ estimator.H
        explicit = estimator.H @ np.linalg.inv(gain) \
            @ estimator.H.T @ estimator.W
        np.testing.assert_allclose(estimator.hat_matrix, explicit,
                                   atol=1e-10)

    def test_projection_properties(self, estimator):
        K = estimator.hat_matrix
        # K is the W-weighted projection onto range(H): idempotent and
        # it reproduces anything already in the column space.
        np.testing.assert_allclose(K @ K, K, atol=1e-9)
        np.testing.assert_allclose(K @ estimator.H, estimator.H,
                                   atol=1e-9)

    def test_residual_sensitivity_annihilates_consistent_readings(
            self, estimator):
        S = estimator.residual_sensitivity
        np.testing.assert_allclose(
            S, np.eye(len(estimator.taken)) - estimator.hat_matrix,
            atol=1e-12)
        np.testing.assert_allclose(S @ estimator.H,
                                   np.zeros_like(estimator.H), atol=1e-9)

    def test_both_matrices_cached(self, estimator):
        assert estimator.hat_matrix is estimator.hat_matrix
        assert estimator.residual_sensitivity \
            is estimator.residual_sensitivity

    def test_fitted_values_agree_with_estimate(self, estimator):
        case = get_case("5bus-study1")
        grid = estimator.grid
        dispatch = {b: float(p) for b, p in proportional_dispatch(
            list(grid.generators.values()), grid.total_load()).items()}
        pf = solve_dc_power_flow(grid, dispatch)
        z = TelemetrySimulator(estimator.plan, sigma=0.001,
                               seed=3).readings(pf.flows, pf.consumption)
        estimate = estimator.estimate(z)
        np.testing.assert_allclose(estimator.hat_matrix @ z,
                                   estimate.estimated_measurements,
                                   atol=1e-9)
