"""Tests for status telemetry and the topology processor."""

import pytest

from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.topology import (
    LineStatus,
    StatusTelemetry,
    TopologyProcessor,
)
from repro.validation import validate_post_attack_topology


@pytest.fixture
def grid():
    return get_case("5bus-study1").build_grid()


class TestTelemetry:
    def test_faithful_from_grid(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        assert telemetry.closed_lines() == [1, 2, 3, 4, 5, 6, 7]
        assert telemetry.spoofed_lines() == []

    def test_open_line_reported_open(self, grid):
        modified = grid.with_line_statuses({5: False})
        telemetry = StatusTelemetry.from_grid(modified)
        assert telemetry.status(5) is LineStatus.OPEN
        assert 5 not in telemetry.closed_lines()

    def test_spoof(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        spoofed = telemetry.spoof(6, LineStatus.OPEN)
        assert spoofed.status(6) is LineStatus.OPEN
        assert spoofed.spoofed_lines() == [6]
        # Original telemetry untouched.
        assert telemetry.status(6) is LineStatus.CLOSED

    def test_secured_status_cannot_be_spoofed(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        with pytest.raises(ModelError):
            telemetry.spoof(3, LineStatus.OPEN, secured=True)

    def test_unknown_line(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        with pytest.raises(ModelError):
            telemetry.status(99)
        with pytest.raises(ModelError):
            telemetry.spoof(99, LineStatus.OPEN)


class TestProcessor:
    def test_faithful_mapping(self, grid):
        view = TopologyProcessor(grid).map_topology()
        assert view.mapped_lines == [1, 2, 3, 4, 5, 6, 7]
        assert view.is_faithful
        assert view.excluded_lines == [] and view.included_lines == []

    def test_exclusion_attack_view(self, grid):
        processor = TopologyProcessor(grid)
        telemetry = StatusTelemetry.from_grid(grid).spoof(
            6, LineStatus.OPEN)
        view = processor.map_topology(telemetry)
        assert 6 not in view.mapped_lines
        assert view.excluded_lines == [6]
        assert not view.is_faithful
        assert view.is_connected()

    def test_inclusion_attack_view(self, grid):
        physical = grid.with_line_statuses({5: False})
        processor = TopologyProcessor(physical)
        telemetry = StatusTelemetry.from_grid(physical).spoof(
            5, LineStatus.CLOSED)
        view = processor.map_topology(telemetry)
        assert 5 in view.mapped_lines
        assert view.included_lines == [5]
        assert view.excluded_lines == []

    def test_validation_clean(self, grid):
        processor = TopologyProcessor(grid)
        view = processor.map_topology()
        assert processor.validate(view) == []

    def test_validation_catches_disconnection(self, grid):
        processor = TopologyProcessor(grid)
        telemetry = StatusTelemetry.from_grid(grid)
        for line in (2, 5, 7):
            telemetry = telemetry.spoof(line, LineStatus.OPEN)
        view = processor.map_topology(telemetry)
        warnings = processor.validate(view)
        assert any("disconnected" in w for w in warnings)
        assert any("isolated" in w for w in warnings)

    def test_single_line_exclusion_not_flagged(self, grid):
        """The stealthy attack passes the processor's sanity checks."""
        processor = TopologyProcessor(grid)
        telemetry = StatusTelemetry.from_grid(grid).spoof(
            6, LineStatus.OPEN)
        view = processor.map_topology(telemetry)
        assert processor.validate(view) == []


class TestPostAttackRevalidation:
    """Edge cases of re-validating an attack-induced believed topology."""

    def test_single_line_exclusion_is_clean(self, grid):
        report = validate_post_attack_topology(grid, excluded=(6,))
        assert report.ok
        assert report.diagnostics == []

    def test_islanding_exclusion_is_fatal_degeneracy(self, grid):
        # opening lines 3 (2-3) and 6 (3-4) strands bus 3.
        report = validate_post_attack_topology(grid, excluded=(3, 6))
        assert not report.ok
        assert report.has("topology.disconnected")
        [finding] = report.fatal
        assert "bus:3" in finding.components
        # an islanding attack degrades the case — it is not malformed.
        assert report.fatal_status() == "degenerate_case"

    def test_inclusion_of_nonexistent_branch(self, grid):
        report = validate_post_attack_topology(grid, included=(99,))
        assert not report.ok
        assert report.has("attack.unknown_line")
        [finding] = report.fatal
        assert "line:99" in finding.components
        # a dangling reference is malformed input, not degeneracy.
        assert report.fatal_status() == "invalid_input"

    def test_double_exclusion_warns_but_passes(self, grid):
        report = validate_post_attack_topology(grid, excluded=(6, 6))
        assert report.ok
        assert report.has("attack.duplicate_target")
        [finding] = report.warnings
        assert "line:6" in finding.components

    def test_conflicting_exclusion_and_inclusion(self, grid):
        report = validate_post_attack_topology(grid, excluded=(6,),
                                               included=(6,))
        assert not report.ok
        assert report.has("attack.conflicting_target")

    def test_exclusion_of_already_open_line_warns(self, grid):
        physical = grid.with_line_statuses({5: False})
        report = validate_post_attack_topology(physical, excluded=(5,))
        assert report.ok
        assert report.has("attack.exclude_open_line")

    def test_inclusion_repairs_physical_islanding(self, grid):
        # physically opening 3 and 6 islands bus 3; an inclusion attack
        # that claims line 6 is closed makes the *believed* topology
        # connected again — revalidation judges the believed view.
        physical = grid.with_line_statuses({3: False, 6: False})
        assert not validate_post_attack_topology(physical).ok
        report = validate_post_attack_topology(physical, included=(6,))
        assert report.ok
        assert report.has("attack.include_closed_line") is False
