"""Tests for status telemetry and the topology processor."""

import pytest

from repro.exceptions import ModelError
from repro.grid.cases import get_case
from repro.topology import (
    LineStatus,
    StatusTelemetry,
    TopologyProcessor,
)


@pytest.fixture
def grid():
    return get_case("5bus-study1").build_grid()


class TestTelemetry:
    def test_faithful_from_grid(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        assert telemetry.closed_lines() == [1, 2, 3, 4, 5, 6, 7]
        assert telemetry.spoofed_lines() == []

    def test_open_line_reported_open(self, grid):
        modified = grid.with_line_statuses({5: False})
        telemetry = StatusTelemetry.from_grid(modified)
        assert telemetry.status(5) is LineStatus.OPEN
        assert 5 not in telemetry.closed_lines()

    def test_spoof(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        spoofed = telemetry.spoof(6, LineStatus.OPEN)
        assert spoofed.status(6) is LineStatus.OPEN
        assert spoofed.spoofed_lines() == [6]
        # Original telemetry untouched.
        assert telemetry.status(6) is LineStatus.CLOSED

    def test_secured_status_cannot_be_spoofed(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        with pytest.raises(ModelError):
            telemetry.spoof(3, LineStatus.OPEN, secured=True)

    def test_unknown_line(self, grid):
        telemetry = StatusTelemetry.from_grid(grid)
        with pytest.raises(ModelError):
            telemetry.status(99)
        with pytest.raises(ModelError):
            telemetry.spoof(99, LineStatus.OPEN)


class TestProcessor:
    def test_faithful_mapping(self, grid):
        view = TopologyProcessor(grid).map_topology()
        assert view.mapped_lines == [1, 2, 3, 4, 5, 6, 7]
        assert view.is_faithful
        assert view.excluded_lines == [] and view.included_lines == []

    def test_exclusion_attack_view(self, grid):
        processor = TopologyProcessor(grid)
        telemetry = StatusTelemetry.from_grid(grid).spoof(
            6, LineStatus.OPEN)
        view = processor.map_topology(telemetry)
        assert 6 not in view.mapped_lines
        assert view.excluded_lines == [6]
        assert not view.is_faithful
        assert view.is_connected()

    def test_inclusion_attack_view(self, grid):
        physical = grid.with_line_statuses({5: False})
        processor = TopologyProcessor(physical)
        telemetry = StatusTelemetry.from_grid(physical).spoof(
            5, LineStatus.CLOSED)
        view = processor.map_topology(telemetry)
        assert 5 in view.mapped_lines
        assert view.included_lines == [5]
        assert view.excluded_lines == []

    def test_validation_clean(self, grid):
        processor = TopologyProcessor(grid)
        view = processor.map_topology()
        assert processor.validate(view) == []

    def test_validation_catches_disconnection(self, grid):
        processor = TopologyProcessor(grid)
        telemetry = StatusTelemetry.from_grid(grid)
        for line in (2, 5, 7):
            telemetry = telemetry.spoof(line, LineStatus.OPEN)
        view = processor.map_topology(telemetry)
        warnings = processor.validate(view)
        assert any("disconnected" in w for w in warnings)
        assert any("isolated" in w for w in warnings)

    def test_single_line_exclusion_not_flagged(self, grid):
        """The stealthy attack passes the processor's sanity checks."""
        processor = TopologyProcessor(grid)
        telemetry = StatusTelemetry.from_grid(grid).spoof(
            6, LineStatus.OPEN)
        view = processor.map_topology(telemetry)
        assert processor.validate(view) == []
