"""Degeneracy-fuzzer smoke tests plus the targeted ill-conditioning
escalation behaviors the fuzzer's invariant rests on."""

import pytest

from repro.core import FastImpactAnalyzer, FastQuery
from repro.grid.caseio import parse_case, write_case
from repro.grid.cases import get_case
from repro.testing.degenerate import (
    DegenerateFuzzer,
    fuzz_degenerate_case,
    run_degenerate_fuzz,
)


def _scaled_case(factor, line_row="3 2 3 5.05 0.05 1 1 1 1 1",
                 admittance="5.05"):
    """5bus-study1 with one line's admittance rescaled."""
    text = write_case(get_case("5bus-study1"))
    scaled = line_row.replace(admittance, repr(float(admittance) * factor))
    return parse_case(text.replace(line_row, scaled), name="scaled")


class TestFuzzerDeterminism:
    def test_mutants_are_iteration_addressable(self):
        base = get_case("5bus-study1")
        first = DegenerateFuzzer(base, seed=3).mutant(17)
        again = DegenerateFuzzer(base, seed=3).mutant(17)
        assert first.mutations == again.mutations
        assert [s.admittance for s in first.case.line_specs] == \
            [s.admittance for s in again.case.line_specs]

    def test_mutations_do_not_leak_into_base(self):
        base = get_case("5bus-study1")
        before = [s.admittance for s in base.line_specs]
        DegenerateFuzzer(base, seed=0).mutant(0)
        assert [s.admittance for s in base.line_specs] == before


class TestFuzzSmoke:
    def test_no_escape_no_silent_disagreement(self):
        report = run_degenerate_fuzz(get_case("5bus-study1"),
                                     case="5bus-study1", seed=0,
                                     iterations=40)
        assert report.ok, report.render()
        assert report.iterations == 40
        assert sum(report.counts.values()) == 40
        # The stream must actually exercise analysis, not only rejection.
        assert report.counts.get("sat", 0) \
            + report.counts.get("unsat", 0) > 0

    def test_bundled_entry_point_and_render(self):
        report = fuzz_degenerate_case("5bus-study2", seed=7,
                                      iterations=15)
        assert report.ok, report.render()
        text = report.render()
        assert "degenerate fuzz 5bus-study2" in text
        assert "never silently disagreed" in text

    def test_time_limit_truncates(self):
        report = run_degenerate_fuzz(get_case("5bus-study1"), seed=0,
                                     iterations=10_000, time_limit=1.0)
        assert report.truncated
        assert report.iterations < 10_000


class TestIllConditioningEscalation:
    """A verdict computed under guarded-linalg warnings is re-decided on
    the exact path even far from the Eq. 37 boundary."""

    def test_warn_band_spread_escalates_verdict(self):
        # Spread ~4.7e8: above the 1e8 warn threshold, below fail.
        case = _scaled_case(1e-8)
        report = FastImpactAnalyzer(case).analyze(FastQuery(
            target_increase_percent=1, state_samples=2))
        assert report.status == "complete"
        codes = {d.code for d in report.diagnostics.diagnostics}
        assert "numeric.ill_conditioned" in codes
        assert "numeric.boundary_escalated" in codes
        assert report.trace.session["boundary_escalations"] >= 1

    def test_fail_band_spread_degrades_to_numerical_unstable(self):
        # Spread ~4.7e12: past the 1e12 fail threshold.
        case = _scaled_case(1e-12)
        report = FastImpactAnalyzer(case).analyze(FastQuery(
            target_increase_percent=1, state_samples=2))
        assert report.status == "numerical_unstable"
        assert not report.satisfiable
        assert "admittance spread" in report.numeric_reason

    def test_clean_case_does_not_escalate(self):
        report = FastImpactAnalyzer(get_case("5bus-study1")).analyze(
            FastQuery(target_increase_percent=1, state_samples=2))
        assert report.status == "complete"
        codes = {d.code for d in (report.diagnostics.diagnostics
                                  if report.diagnostics else [])}
        assert "numeric.boundary_escalated" not in codes
        assert report.trace.session["boundary_escalations"] == 0
