"""Tests for the guarded linear-algebra layer: condition monitoring,
verified solves, matrix-scaled rank, policy plumbing and diagnostics."""

import numpy as np
import pytest

from repro.exceptions import NumericalInstability
from repro.numerics import (
    FATAL,
    WARNING,
    GuardedFactorization,
    NumericsPolicy,
    collect_diagnostics,
    default_policy,
    guarded_inverse,
    guarded_rank,
    guarded_solve,
    set_policy,
)


@pytest.fixture(autouse=True)
def reset_policy():
    yield
    set_policy(None)


def _hilbert(n):
    """The classic ill-conditioned test matrix."""
    i = np.arange(n)
    return 1.0 / (i[:, None] + i[None, :] + 1.0)


class TestGuardedSolve:
    def test_well_conditioned_solve_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        b = rng.standard_normal(6)
        x = guarded_solve(a, b)
        np.testing.assert_allclose(x, np.linalg.solve(a, b), atol=1e-10)

    def test_singular_matrix_raises_instability(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(NumericalInstability) as excinfo:
            guarded_solve(a, np.ones(2))
        assert excinfo.value.diagnostic is not None
        assert excinfo.value.diagnostic.severity == FATAL

    def test_condition_fail_threshold_refuses(self):
        # Hilbert(12) has condition ~1e16: over any sane fail threshold.
        with pytest.raises(NumericalInstability) as excinfo:
            guarded_solve(_hilbert(12), np.ones(12))
        assert excinfo.value.diagnostic.condition is not None
        assert excinfo.value.diagnostic.condition \
            >= default_policy().condition_fail

    def test_warn_band_emits_diagnostic_but_returns(self):
        # Hilbert(6): condition ~1.5e7; tighten warn below it.
        set_policy(NumericsPolicy(condition_warn=1e6,
                                  condition_fail=1e12))
        with collect_diagnostics() as notes:
            x = guarded_solve(_hilbert(6), np.ones(6))
        assert np.all(np.isfinite(x))
        assert notes and notes[0].severity == WARNING
        assert notes[0].condition > 1e6

    def test_non_finite_input_refuses(self):
        a = np.eye(3)
        a[1, 1] = np.nan
        with pytest.raises(NumericalInstability):
            guarded_solve(a, np.ones(3))
        with pytest.raises(NumericalInstability):
            guarded_solve(np.eye(3), np.array([1.0, np.inf, 0.0]))

    def test_matrix_rhs_supported(self):
        a = np.diag([2.0, 4.0, 8.0])
        inverse = guarded_inverse(a)
        np.testing.assert_allclose(inverse,
                                   np.diag([0.5, 0.25, 0.125]),
                                   atol=1e-12)

    def test_refinement_helps_moderately_conditioned_system(self):
        # A system the raw solve answers with ~1e-11 relative residual;
        # the guarded path must verify it below the fail threshold.
        set_policy(NumericsPolicy(condition_warn=1e10,
                                  condition_fail=1e14))
        a = _hilbert(8) + 1e-6 * np.eye(8)
        b = np.ones(8)
        x = guarded_solve(a, b)
        residual = np.max(np.abs(b - a @ x))
        assert residual < 1e-8


class TestGuardedFactorization:
    def test_many_solves_one_factorization(self):
        a = np.array([[4.0, 1.0], [1.0, 3.0]])
        fact = GuardedFactorization(a, context="test")
        for k in range(4):
            b = np.array([1.0 * k, 2.0])
            np.testing.assert_allclose(fact.solve(b),
                                       np.linalg.solve(a, b),
                                       atol=1e-12)

    def test_condition_estimate_tracks_true_condition(self):
        a = np.diag([1.0, 1e-5])
        fact = GuardedFactorization(a, context="test")
        true_condition = np.linalg.cond(a, 1)
        assert fact.condition == pytest.approx(true_condition, rel=1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            GuardedFactorization(np.ones((2, 3)))


class TestGuardedRank:
    def test_full_rank(self):
        assert guarded_rank(np.eye(4)) == 4

    def test_exact_deficiency(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        assert guarded_rank(a) == 1

    def test_near_deficiency_detected_by_scaled_cutoff(self):
        # numpy's machine-epsilon default calls this full rank; the
        # matrix-scaled 1e-8 cutoff must not.
        a = np.diag([1.0, 1.0, 1e-10])
        assert np.linalg.matrix_rank(a) == 3
        assert guarded_rank(a) == 2

    def test_fragile_rank_decision_warns(self):
        a = np.diag([1.0, 5e-8])  # just above the 1e-8 cutoff
        with collect_diagnostics() as notes:
            rank = guarded_rank(a)
        assert rank == 2
        assert notes and "near-rank-deficient" in notes[0].detail


class TestPolicy:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMERIC_CONDITION_FAIL", "1e6")
        monkeypatch.setenv("REPRO_NUMERIC_REFINE_STEPS", "5")
        policy = NumericsPolicy.from_env()
        assert policy.condition_fail == 1e6
        assert policy.refine_steps == 5
        assert policy.condition_warn == 1e8  # untouched default

    def test_bad_env_values_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMERIC_RESIDUAL_FAIL", "not-a-float")
        assert NumericsPolicy.from_env().residual_fail == 1e-6

    def test_key_distinguishes_policies(self):
        a, b = NumericsPolicy(), NumericsPolicy(condition_fail=1e10)
        assert a.key() != b.key()
        assert a.key() == NumericsPolicy().key()

    def test_set_policy_changes_guard_behavior(self):
        a = np.diag([1.0, 1e-6])  # condition ~1e6
        guarded_solve(a, np.ones(2))  # fine under defaults
        set_policy(NumericsPolicy(condition_fail=1e3))
        with pytest.raises(NumericalInstability):
            guarded_solve(a, np.ones(2))

    def test_diagnostics_round_trip(self):
        set_policy(NumericsPolicy(condition_warn=1e2))
        with collect_diagnostics() as notes:
            guarded_solve(np.diag([1.0, 1e-4]), np.ones(2))
        assert len(notes) == 1
        payload = notes[0].to_dict()
        assert payload["severity"] == WARNING
        assert payload["context"]
        assert "cond~" in notes[0].render()
