"""Differential tests for the sparse core against dense numpy oracles.

Every CSR operation, the sparse LU (solve, transpose solve, batched
RHS), the rank-1 Sherman-Morrison updates and the guarded-layer
dispatch are checked bit-for-tolerance against the dense equivalents on
randomized seeded systems, so the sparse backend can only ever disagree
with the dense one by floating-point noise.
"""

import numpy as np
import pytest

from repro.exceptions import NumericalInstability
from repro.numerics import (
    CsrMatrix,
    GuardedFactorization,
    SingularMatrixError,
    SparseLU,
    UpdatedSolver,
    guarded_rank,
    rcm_ordering,
)


def _random_spd_system(n, seed, density=0.25):
    """A diagonally-dominant sparse system (always factorizable)."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n, n))
    dense[rng.random((n, n)) > density] = 0.0
    dense = dense + dense.T
    dense[np.arange(n), np.arange(n)] = np.abs(dense).sum(axis=1) + 1.0
    return dense


def _random_sparse(rows, cols, seed, density=0.3):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, cols))
    dense[rng.random((rows, cols)) > density] = 0.0
    return dense


class TestCsrMatrix:
    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_and_matvec(self, seed):
        dense = _random_sparse(13, 9, seed)
        csr = CsrMatrix.from_dense(dense)
        assert np.array_equal(csr.to_dense(), dense)
        rng = np.random.default_rng(seed + 100)
        x = rng.normal(size=9)
        y = rng.normal(size=13)
        assert np.allclose(csr.matvec(x), dense @ x)
        assert np.allclose(csr.rmatvec(y), dense.T @ y)
        X = rng.normal(size=(9, 4))
        assert np.allclose(csr.matvec(X), dense @ X)

    def test_from_coo_deduplicates(self):
        rows = np.array([0, 0, 1, 0])
        cols = np.array([1, 1, 0, 2])
        vals = np.array([2.0, 3.0, 4.0, 5.0])
        csr = CsrMatrix.from_coo(rows, cols, vals, (2, 3))
        expected = np.array([[0.0, 5.0, 5.0], [4.0, 0.0, 0.0]])
        assert np.array_equal(csr.to_dense(), expected)

    @pytest.mark.parametrize("seed", range(5))
    def test_select_scale_transpose(self, seed):
        dense = _random_sparse(11, 7, seed)
        csr = CsrMatrix.from_dense(dense)
        keep_rows = [0, 3, 4, 9]
        assert np.array_equal(csr.select_rows(keep_rows).to_dense(),
                              dense[keep_rows])
        keep_cols = [1, 2, 5]
        assert np.array_equal(csr.select_columns(keep_cols).to_dense(),
                              dense[:, keep_cols])
        scale = np.arange(1.0, 12.0)
        assert np.allclose(csr.scale_rows(scale).to_dense(),
                           scale[:, None] * dense)
        assert np.array_equal(csr.transpose().to_dense(), dense.T)

    @pytest.mark.parametrize("seed", range(5))
    def test_gram_matches_dense(self, seed):
        dense = _random_sparse(17, 8, seed)
        csr = CsrMatrix.from_dense(dense)
        assert np.allclose(csr.gram().to_dense(), dense.T @ dense)
        w = np.random.default_rng(seed).uniform(0.5, 2.0, 17)
        assert np.allclose(csr.gram(w).to_dense(),
                           dense.T @ np.diag(w) @ dense)

    def test_one_norm(self):
        dense = np.array([[1.0, -4.0], [2.0, 0.0]])
        assert CsrMatrix.from_dense(dense).one_norm() == 4.0


class TestSparseLU:
    @pytest.mark.parametrize("seed", range(10))
    def test_solve_matches_numpy(self, seed):
        n = 20
        dense = _random_spd_system(n, seed)
        lu = SparseLU(CsrMatrix.from_dense(dense))
        rng = np.random.default_rng(seed + 50)
        b = rng.normal(size=n)
        assert np.allclose(lu.solve(b), np.linalg.solve(dense, b),
                           atol=1e-10)
        assert np.allclose(lu.solve_transpose(b),
                           np.linalg.solve(dense.T, b), atol=1e-10)
        B = rng.normal(size=(n, 5))
        assert np.allclose(lu.solve(B), np.linalg.solve(dense, B),
                           atol=1e-10)

    @pytest.mark.parametrize("seed", range(5))
    def test_unsymmetric_with_pivoting(self, seed):
        rng = np.random.default_rng(seed)
        n = 15
        dense = _random_sparse(n, n, seed, density=0.4)
        dense += np.diag(rng.uniform(0.01, 0.1, n))  # weak diagonal
        if abs(np.linalg.det(dense)) < 1e-8:
            pytest.skip("singular draw")
        lu = SparseLU(CsrMatrix.from_dense(dense))
        b = rng.normal(size=n)
        assert np.allclose(lu.solve(b), np.linalg.solve(dense, b),
                           atol=1e-8)

    def test_singular_raises(self):
        dense = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SingularMatrixError):
            SparseLU(CsrMatrix.from_dense(dense))

    @pytest.mark.parametrize("seed", range(10))
    def test_allow_singular_rank_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        n, r = 12, 12 - (seed % 4)
        basis = rng.normal(size=(n, r))
        dense = basis @ basis.T              # rank r, symmetric PSD
        lu = SparseLU(CsrMatrix.from_dense(dense), allow_singular=True)
        magnitudes = np.sort(np.abs(lu.pivot_magnitudes))[::-1]
        cutoff = magnitudes[0] * 1e-8
        assert int(np.sum(magnitudes > cutoff)) == \
            np.linalg.matrix_rank(dense)

    def test_rcm_reduces_bandwidth(self):
        rng = np.random.default_rng(3)
        n = 30
        perm_in = rng.permutation(n)
        dense = np.zeros((n, n))
        for i in range(n):
            dense[perm_in[i], perm_in[i]] = 4.0
        for i in range(n - 1):
            dense[perm_in[i], perm_in[i + 1]] = -1.0
            dense[perm_in[i + 1], perm_in[i]] = -1.0
        perm = rcm_ordering(CsrMatrix.from_dense(dense))
        reordered = dense[np.ix_(perm, perm)]
        rows, cols = np.nonzero(reordered)
        assert np.max(np.abs(rows - cols)) <= 2

    def test_fill_stays_bounded_on_chain(self):
        n = 200
        dense = np.zeros((n, n))
        dense[np.arange(n), np.arange(n)] = 2.0
        dense[np.arange(n - 1), np.arange(1, n)] = -1.0
        dense[np.arange(1, n), np.arange(n - 1)] = -1.0
        lu = SparseLU(CsrMatrix.from_dense(dense))
        assert lu.fill_nnz <= 3 * n     # tridiagonal: no fill blow-up


class TestUpdatedSolver:
    @pytest.mark.parametrize("seed", range(8))
    def test_rank1_update_matches_refactorization(self, seed):
        """The Sherman-Morrison path against the refactorize oracle."""
        n = 18
        dense = _random_spd_system(n, seed)
        lu = SparseLU(CsrMatrix.from_dense(dense))
        rng = np.random.default_rng(seed + 10)
        u = np.zeros(n)
        u[rng.integers(0, n)] = 1.0
        u[rng.integers(0, n)] -= 1.0
        alpha = rng.uniform(0.5, 2.0)
        updated_dense = dense + alpha * np.outer(u, u)
        if abs(np.linalg.det(updated_dense)) < 1e-8:
            pytest.skip("update made the draw singular")
        solver = UpdatedSolver(
            lu.solve,
            lambda x: CsrMatrix.from_dense(dense).matvec(x),
            [(alpha, u, u)])
        b = rng.normal(size=n)
        oracle = np.linalg.solve(updated_dense, b)
        assert np.allclose(solver.solve(b), oracle, atol=1e-8)

    def test_singular_capacitance_raises(self):
        """Removing a bridge line makes the capacitance singular."""
        # 2-bus network reduced susceptance: B = [y]; removing the only
        # line (alpha = -y) zeroes it out.
        dense = np.array([[2.0]])
        lu = SparseLU(CsrMatrix.from_dense(dense))
        with pytest.raises(SingularMatrixError):
            UpdatedSolver(lu.solve,
                          lambda x: dense @ x,
                          [(-2.0, np.array([1.0]), np.array([1.0]))])


class TestGuardedSparseDispatch:
    @pytest.mark.parametrize("seed", range(5))
    def test_guarded_factorization_parity(self, seed):
        n = 16
        dense = _random_spd_system(n, seed)
        fact_d = GuardedFactorization(dense, context="parity test")
        fact_s = GuardedFactorization(CsrMatrix.from_dense(dense),
                                      context="parity test")
        assert fact_s.backend == "sparse"
        b = np.random.default_rng(seed).normal(size=n)
        assert np.allclose(fact_d.solve(b), fact_s.solve(b), atol=1e-10)

    def test_guarded_rank_parity(self):
        for seed in range(10):
            rng = np.random.default_rng(seed + 200)
            n, r = 10, 10 - (seed % 3)
            basis = rng.normal(size=(n, r))
            gram = basis @ basis.T
            assert guarded_rank(gram, context="t") == \
                guarded_rank(CsrMatrix.from_dense(gram), context="t")

    def test_sparse_singular_fails_guarded(self):
        dense = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(NumericalInstability):
            GuardedFactorization(CsrMatrix.from_dense(dense),
                                 context="singular test").solve(
                                     np.ones(2))
