"""Certified-solving tests: proofs, witnesses, and tamper detection.

The certificate checkers in :mod:`repro.smt.certificates` share no code
with the search loops they audit, so these tests double as a differential
harness: every answer the solver produces must survive its independent
check, and every deliberately corrupted certificate must be rejected.
"""

import random
from fractions import Fraction

import pytest

from repro.exceptions import CertificateError, SolverError
from repro.smt import (
    And,
    BoolVar,
    Not,
    Or,
    RealVar,
    SmtSolver,
    SolveResult,
    at_most,
    implies,
    minimize,
    verify_sat,
    verify_unsat,
)
from repro.smt.certificates import (
    RupChecker,
    check_farkas,
    check_model,
    check_rup_proof,
    self_check_default,
)
from repro.smt.proof import INPUT, RUP, ProofStep
from repro.testing import corrupt_proof, tamper_model, truncate_proof


def certified_solver() -> SmtSolver:
    return SmtSolver(certify=True)


class TestSelfCheckDefault:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SELF_CHECK", "1")
        assert self_check_default(False) is False
        monkeypatch.delenv("REPRO_SELF_CHECK")
        assert self_check_default(True) is True

    @pytest.mark.parametrize("value,expected", [
        ("", False), ("0", False), ("false", False), ("no", False),
        ("off", False), ("1", True), ("true", True), ("yes", True),
    ])
    def test_env_resolution(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SELF_CHECK", value)
        assert self_check_default(None) is expected


class TestEnableCertificates:
    def test_constructor_flag(self):
        solver = certified_solver()
        assert solver.certify
        assert solver.proof is not None

    def test_disabled_by_default_and_allocation_free(self):
        solver = SmtSolver()
        assert not solver.certify
        assert solver.proof is None
        x = RealVar("x")
        solver.add(x <= 1)
        solver.solve()
        assert solver.proof is None
        assert solver.last_certificate is None

    def test_late_enable_on_used_solver_raises(self):
        solver = SmtSolver()
        solver.add(BoolVar("p"))
        with pytest.raises(SolverError):
            solver.enable_certificates()


class TestSatCertificates:
    def test_boolean_model_verifies(self):
        solver = certified_solver()
        p, q = BoolVar("p"), BoolVar("q")
        solver.add(implies(p, q))
        solver.add(p)
        assert solver.solve() is SolveResult.SAT
        report = verify_sat(solver)
        assert report.kind == "model"
        assert report.terms_checked == 2

    def test_theory_model_verifies(self):
        solver = certified_solver()
        x, y = RealVar("x"), RealVar("y")
        solver.add(x + y >= 4)
        solver.add(x <= 1)
        assert solver.solve() is SolveResult.SAT
        verify_sat(solver)

    def test_tampered_bool_rejected(self):
        solver = certified_solver()
        p, q = BoolVar("p"), BoolVar("q")
        solver.add(And(p, q))
        assert solver.solve() is SolveResult.SAT
        bad = tamper_model(solver.model(), bool_var=p)
        with pytest.raises(CertificateError):
            verify_sat(solver, model=bad)

    def test_tampered_real_rejected(self):
        solver = certified_solver()
        x = RealVar("x")
        solver.add(x.eq(Fraction(7, 2)))
        assert solver.solve() is SolveResult.SAT
        bad = tamper_model(solver.model(), real_var=x)
        with pytest.raises(CertificateError):
            verify_sat(solver, model=bad)

    def test_assumptions_are_part_of_the_check(self):
        solver = certified_solver()
        p = BoolVar("p")
        solver.add(Or(p, Not(p)))
        assert solver.solve([Not(p)]) is SolveResult.SAT
        verify_sat(solver)
        # A model that ignores the assumption must be rejected.
        bad = tamper_model(solver.model(), bool_var=p)
        with pytest.raises(CertificateError):
            verify_sat(solver, model=bad)

    def test_requires_certify_mode(self):
        solver = SmtSolver()
        solver.add(BoolVar("p"))
        solver.solve()
        with pytest.raises(CertificateError):
            verify_sat(solver)


class TestUnsatCertificates:
    def test_boolean_unsat_verifies(self):
        solver = certified_solver()
        p = BoolVar("p")
        solver.add(p)
        solver.add(Not(p))
        assert solver.solve() is SolveResult.UNSAT
        report = verify_unsat(solver)
        assert report.kind == "unsat"

    def test_theory_unsat_carries_farkas_witnesses(self):
        solver = certified_solver()
        x, y, z = RealVar("x"), RealVar("y"), RealVar("z")
        solver.add(x <= y)
        solver.add(y <= z)
        solver.add(z <= x - 1)
        assert solver.solve() is SolveResult.UNSAT
        report = verify_unsat(solver)
        assert report.theory_lemmas >= 1

    def test_assumption_unsat(self):
        solver = certified_solver()
        p, q = BoolVar("p"), BoolVar("q")
        solver.add(implies(p, q))
        assert solver.solve([p, Not(q)]) is SolveResult.UNSAT
        verify_unsat(solver)
        # The same solver stays usable and certifiable afterwards.
        assert solver.solve([p]) is SolveResult.SAT
        verify_sat(solver)

    def test_truncated_proof_rejected(self):
        solver = certified_solver()
        x = RealVar("x")
        solver.add(x >= 3)
        solver.add(x <= 2)
        assert solver.solve() is SolveResult.UNSAT
        certificate = solver.last_certificate
        verify_unsat(solver, certificate)
        with pytest.raises(CertificateError):
            verify_unsat(solver, truncate_proof(certificate,
                                                drop=len(certificate.steps)))

    def test_corrupted_proof_rejected(self):
        solver = certified_solver()
        ps = [BoolVar(f"p{i}") for i in range(4)]
        solver.add(Or(ps[0], ps[1]))
        solver.add(Or(ps[0], Not(ps[1])))
        solver.add(Or(Not(ps[0]), ps[2]))
        solver.add(Or(Not(ps[0]), Not(ps[2])))
        assert solver.solve() is SolveResult.UNSAT
        certificate = solver.last_certificate
        verify_unsat(solver, certificate)
        if any(s.kind == RUP and s.lits for s in certificate.steps):
            with pytest.raises(CertificateError):
                verify_unsat(solver, corrupt_proof(certificate))

    def test_optimize_terminal_unsat_certifies(self):
        solver = certified_solver()
        x = RealVar("x")
        solver.add(x >= 2)
        solver.add(x <= 9)
        result = minimize(solver, x)
        assert result.optimum == 2
        verify_unsat(solver)               # the optimality proof
        verify_sat(solver, model=result.model)

    def test_no_certificate_recorded_raises(self):
        solver = certified_solver()
        solver.add(BoolVar("p"))
        solver.solve()
        with pytest.raises(CertificateError):
            verify_unsat(solver)


class TestCheckModel:
    def test_counts_and_rejects(self):
        solver = certified_solver()
        p = BoolVar("p")
        solver.add(p)
        solver.solve()
        model = solver.model()
        assert check_model([p, Or(p, Not(p))], model) == 2
        with pytest.raises(CertificateError) as err:
            check_model([p, Not(p)], model)
        assert "assertion 1" in str(err.value)


class TestCheckFarkas:
    def _atoms(self):
        # Theory-atom registry as the solver keeps it: var -> plain
        # LE/LT atom; negation lives in the literal's sign.  The
        # conflicting set is {x <= 1, y <= 1, not(x + y < 3)}: witness
        # literals (1, 2, -3), refuted clause Or(-1, -2, 3).
        x, y = RealVar("x"), RealVar("y")
        return {1: x <= 1, 2: y <= 1, 3: x + y < 3}

    def test_valid_witness(self):
        atoms = self._atoms()
        # x<=1, y<=1, -(x+y)<=-3 sum to 0 <= -1: contradiction.
        check_farkas([-1, -2, 3],
                     [(1, Fraction(1)), (2, Fraction(1)),
                      (-3, Fraction(1))], atoms)

    def test_missing_witness_rejected(self):
        with pytest.raises(CertificateError):
            check_farkas([-1], None, self._atoms())

    def test_negative_coefficient_rejected(self):
        with pytest.raises(CertificateError):
            check_farkas([-1, -2, 3],
                         [(1, Fraction(-1)), (2, Fraction(1)),
                          (-3, Fraction(1))], self._atoms())

    def test_mismatched_literals_rejected(self):
        with pytest.raises(CertificateError):
            check_farkas([-1, -2],
                         [(1, Fraction(1)), (-3, Fraction(1))],
                         self._atoms())

    def test_non_contradictory_combination_rejected(self):
        atoms = self._atoms()
        # x<=1 alone (coefficient on the others zero) proves nothing.
        with pytest.raises(CertificateError):
            check_farkas([-1, -2, 3],
                         [(1, Fraction(1)), (2, Fraction(0)),
                          (-3, Fraction(0))], atoms)

    def test_uncancelled_variable_rejected(self):
        atoms = self._atoms()
        with pytest.raises(CertificateError):
            check_farkas([-1, 3],
                         [(1, Fraction(1)), (-3, Fraction(1))], atoms)


class TestRupChecker:
    def test_unit_closure_and_rup(self):
        checker = RupChecker()
        checker.add_clause([1])
        checker.add_clause([-1, 2])
        assert checker.is_rup([2])          # follows by propagation
        assert not checker.is_rup([3])      # unrelated

    def test_contradictory_database_accepts_everything(self):
        checker = RupChecker()
        checker.add_clause([1])
        checker.add_clause([-1])
        assert checker.contradictory
        assert checker.is_rup([])

    def test_check_rup_proof_end_to_end(self):
        steps = [ProofStep(INPUT, (1, 2)), ProofStep(INPUT, (1, -2)),
                 ProofStep(INPUT, (-1, 2)), ProofStep(INPUT, (-1, -2)),
                 ProofStep(RUP, (1,)), ProofStep(RUP, ())]
        rup_steps, theory = check_rup_proof(steps, {})
        assert (rup_steps, theory) == (2, 0)

    def test_non_rup_step_rejected(self):
        steps = [ProofStep(INPUT, (1, 2)), ProofStep(RUP, (1,))]
        with pytest.raises(CertificateError):
            check_rup_proof(steps, {})

    def test_open_proof_rejected(self):
        steps = [ProofStep(INPUT, (1, 2))]
        with pytest.raises(CertificateError):
            check_rup_proof(steps, {})

    def test_assumption_claim(self):
        steps = [ProofStep(INPUT, (-1, 2)), ProofStep(INPUT, (-2,))]
        # Under assumption lit 1 the clauses are contradictory, so the
        # clause (-1) must be derivable ...
        check_rup_proof(steps, {}, assumption_lits=(1,))
        # ... but with no assumptions the set is satisfiable.
        with pytest.raises(CertificateError):
            check_rup_proof(steps, {})


class TestRandomizedDifferential:
    """Random formulas: every answer must survive its certificate."""

    def test_random_mixed_formulas(self):
        rng = random.Random(20260806)
        sat = unsat = 0
        for round_no in range(40):
            solver = certified_solver()
            bools = [BoolVar(f"b{round_no}_{i}") for i in range(4)]
            reals = [RealVar(f"r{round_no}_{i}") for i in range(3)]
            for _ in range(rng.randint(3, 8)):
                kind = rng.random()
                if kind < 0.4:
                    lits = [b if rng.random() < 0.5 else Not(b)
                            for b in rng.sample(bools, rng.randint(1, 3))]
                    solver.add(Or(*lits))
                elif kind < 0.8:
                    expr = sum((rng.randint(-3, 3) * v for v in reals),
                               rng.randint(-2, 2) * reals[0])
                    bound = rng.randint(-6, 6)
                    atom = expr <= bound if rng.random() < 0.5 \
                        else expr >= bound
                    guard = rng.choice(bools)
                    solver.add(Or(atom, guard) if rng.random() < 0.5
                               else atom)
                else:
                    solver.add(at_most(bools, rng.randint(0, 2)))
            result = solver.solve()
            if result is SolveResult.SAT:
                sat += 1
                verify_sat(solver)
            else:
                unsat += 1
                verify_unsat(solver)
        assert sat and unsat      # the mix must exercise both paths
