"""Tests for SolverBudget and its enforcement inside the solver stack."""

import time

import pytest

from repro.exceptions import BudgetExhausted
from repro.opf.lp import LinearProgram, LpStatus
from repro.smt import (
    BoolVar,
    Or,
    RealVar,
    SmtSolver,
    SolveResult,
    SolverBudget,
    at_most,
    minimize,
)


def _pigeonhole(solver, pigeons=6, holes=5):
    """Assert the (unsat) pigeonhole principle: a conflict-heavy search."""
    grid = [[BoolVar(f"p{i}h{j}") for j in range(holes)]
            for i in range(pigeons)]
    for row in grid:
        solver.add(Or(*row))
    for j in range(holes):
        solver.add(at_most([grid[i][j] for i in range(pigeons)], 1))


class TestBudgetUnit:
    def test_counter_limits_raise_with_reason(self):
        budget = SolverBudget(max_conflicts=2)
        budget.on_conflict()
        with pytest.raises(BudgetExhausted) as info:
            budget.on_conflict()
        assert "conflict budget" in str(info.value)
        assert budget.exhausted_reason == info.value.reason

    def test_each_counter_has_its_own_limit(self):
        for hook, field in (("on_conflict", "conflict"),
                            ("on_decision", "decision"),
                            ("on_pivot", "pivot")):
            budget = SolverBudget(**{f"max_{field}s": 1}) \
                if field != "pivot" else SolverBudget(max_pivots=1)
            with pytest.raises(BudgetExhausted) as info:
                getattr(budget, hook)()
            assert field in str(info.value)

    def test_keeps_raising_once_exhausted(self):
        budget = SolverBudget(max_decisions=1)
        with pytest.raises(BudgetExhausted):
            budget.on_decision()
        # Any further event fails fast with the original reason.
        with pytest.raises(BudgetExhausted) as info:
            budget.on_conflict()
        assert "decision budget" in str(info.value)

    def test_wall_clock_deadline(self):
        budget = SolverBudget(wall_seconds=0.01, check_interval=1).start()
        time.sleep(0.02)
        with pytest.raises(BudgetExhausted) as info:
            budget.on_decision()
        assert "wall-clock" in str(info.value)

    def test_wall_checked_only_every_interval(self):
        budget = SolverBudget(wall_seconds=0.01, check_interval=1000)
        budget.start()
        time.sleep(0.02)
        # 999 events pass without a clock read; the 1000th catches it.
        for _ in range(999):
            budget.on_decision()
        with pytest.raises(BudgetExhausted):
            budget.on_decision()

    def test_check_wall_is_unconditional(self):
        budget = SolverBudget(wall_seconds=0.0).start()
        with pytest.raises(BudgetExhausted):
            budget.check_wall()

    def test_exhausted_probe_does_not_raise(self):
        budget = SolverBudget(wall_seconds=0.0).start()
        assert budget.exhausted()
        assert budget.exhausted_reason is not None
        assert SolverBudget(max_conflicts=5).exhausted() is False

    def test_start_is_idempotent(self):
        budget = SolverBudget(wall_seconds=10.0).start()
        deadline = budget._deadline
        assert budget.start()._deadline == deadline

    def test_unlimited_budget_never_exhausts(self):
        budget = SolverBudget()
        for _ in range(200):
            budget.on_conflict()
            budget.on_decision()
            budget.on_pivot()
        assert not budget.exhausted()

    def test_dict_round_trip(self):
        budget = SolverBudget(wall_seconds=1.5, max_conflicts=10,
                              max_pivots=99, check_interval=8)
        clone = SolverBudget.from_dict(budget.to_dict())
        assert clone.wall_seconds == 1.5
        assert clone.max_conflicts == 10
        assert clone.max_decisions is None
        assert clone.max_pivots == 99
        assert clone.check_interval == 8
        assert SolverBudget.from_dict({}).to_dict() == {}

    def test_bad_check_interval_rejected(self):
        with pytest.raises(ValueError):
            SolverBudget(check_interval=0)


class TestSolverIntegration:
    def test_exhaustion_returns_unknown_with_partial_stats(self):
        solver = SmtSolver()
        _pigeonhole(solver)
        result = solver.solve(budget=SolverBudget(max_conflicts=3))
        assert result is SolveResult.UNKNOWN
        assert "conflict budget" in solver.last_budget_reason
        assert solver.stats.budget_exhaustions == 1
        assert solver.stats.solve_calls == 1
        assert solver.stats.conflicts >= 3

    def test_solver_reusable_after_exhaustion(self):
        solver = SmtSolver()
        _pigeonhole(solver)
        assert solver.solve(budget=SolverBudget(max_conflicts=3)) \
            is SolveResult.UNKNOWN
        solver.set_budget(None)
        assert solver.solve() is SolveResult.UNSAT
        assert solver.last_budget_reason is None

    def test_budget_is_cumulative_across_solvers(self):
        # One budget attached to two solvers in sequence (the shape of a
        # whole impact analysis): the counters keep accumulating.
        budget = SolverBudget(max_conflicts=100000)
        first = SmtSolver()
        _pigeonhole(first)
        first.set_budget(budget)
        assert first.solve() is SolveResult.UNSAT
        spent = budget.conflicts
        assert spent > 0
        second = SmtSolver()
        _pigeonhole(second)
        second.set_budget(budget)
        assert second.solve() is SolveResult.UNSAT
        assert budget.conflicts >= 2 * spent

    def test_unbudgeted_solve_unaffected(self):
        solver = SmtSolver()
        _pigeonhole(solver)
        assert solver.budget is None
        assert solver.solve() is SolveResult.UNSAT

    def test_generous_budget_same_answer(self):
        solver = SmtSolver()
        _pigeonhole(solver)
        result = solver.solve(budget=SolverBudget(wall_seconds=60.0,
                                                  max_conflicts=10 ** 9))
        assert result is SolveResult.UNSAT

    def test_optimizer_raises_on_exhaustion(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 1)
        solver.add(x <= 5)
        solver.set_budget(SolverBudget(wall_seconds=0.0,
                                       check_interval=1).start())
        with pytest.raises(BudgetExhausted):
            minimize(solver, x)


class TestLpIntegration:
    def _lp(self, budget=None):
        lp = LinearProgram(budget=budget)
        x = lp.add_variable(0, 10, "x")
        y = lp.add_variable(0, 10, "y")
        lp.add_constraint({x: 1, y: 1}, lower=4)
        lp.add_constraint({x: 1, y: -1}, upper=2)
        lp.set_objective({x: 3, y: 1})
        return lp

    def test_pivot_budget_enforced(self):
        with pytest.raises(BudgetExhausted) as info:
            self._lp(SolverBudget(max_pivots=1).start()).solve()
        assert "pivot budget" in str(info.value)

    def test_unbudgeted_lp_still_solves(self):
        result = self._lp().solve()
        assert result.status is LpStatus.OPTIMAL

    def test_generous_budget_lp_solves(self):
        budget = SolverBudget(max_pivots=10 ** 6).start()
        result = self._lp(budget).solve()
        assert result.status is LpStatus.OPTIMAL
        assert budget.pivots > 0
