"""End-to-end tests of the DPLL(T) solver on mixed Boolean/LRA formulas."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.smt import (
    And,
    BoolVar,
    Not,
    Or,
    RealVar,
    SmtSolver,
    SolveResult,
    at_most,
    iff,
    implies,
)
from repro.smt.evaluator import evaluate


class TestBooleanReasoning:
    def test_unit_chain(self):
        solver = SmtSolver()
        ps = [BoolVar(f"p{i}") for i in range(10)]
        for a, b in zip(ps, ps[1:]):
            solver.add(implies(a, b))
        solver.add(ps[0])
        assert solver.solve() is SolveResult.SAT
        model = solver.model()
        assert all(model.bool_value(p) for p in ps)

    def test_iff_cycle_with_negation_unsat(self):
        solver = SmtSolver()
        p, q = BoolVar("p"), BoolVar("q")
        solver.add(iff(p, q))
        solver.add(iff(q, Not(p)))
        assert solver.solve() is SolveResult.UNSAT


class TestTheoryReasoning:
    def test_transitive_bounds(self):
        solver = SmtSolver()
        x, y, z = RealVar("x"), RealVar("y"), RealVar("z")
        solver.add(x <= y)
        solver.add(y <= z)
        solver.add(z <= x - 1)
        assert solver.solve() is SolveResult.UNSAT

    def test_equality_split(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x.eq(3))
        assert solver.solve() is SolveResult.SAT
        assert solver.model().real_value(x) == 3

    def test_disequality(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 0)
        solver.add(x <= 0)
        solver.add(x.neq(0))
        assert solver.solve() is SolveResult.UNSAT

    def test_disequality_sat(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 0)
        solver.add(x <= 1)
        solver.add(x.neq(0))
        assert solver.solve() is SolveResult.SAT
        assert 0 < solver.model().real_value(x) <= 1

    def test_boolean_guards_theory(self):
        solver = SmtSolver()
        p, q = BoolVar("p"), BoolVar("q")
        x = RealVar("x")
        solver.add(implies(p, x >= 10))
        solver.add(implies(q, x <= 0))
        solver.add(Or(p, q))
        solver.add(x.eq(5))
        assert solver.solve() is SolveResult.UNSAT

    def test_model_error_when_unsat(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x <= 0)
        solver.add(x >= 1)
        assert solver.solve() is SolveResult.UNSAT
        with pytest.raises(SolverError):
            solver.model()


class TestMixedFuzz:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**30))
    def test_models_satisfy_assertions(self, seed):
        rng = random.Random(seed)
        solver = SmtSolver()
        bools = [BoolVar(f"b{i}") for i in range(3)]
        reals = [RealVar(f"r{i}") for i in range(3)]
        assertions = []
        for _ in range(rng.randint(2, 8)):
            kind = rng.randrange(4)
            if kind == 0:
                lits = [b if rng.random() < 0.5 else Not(b)
                        for b in rng.sample(bools, rng.randint(1, 3))]
                term = Or(*lits)
            elif kind == 1:
                x, y = rng.sample(reals, 2)
                term = (rng.randint(-3, 3) * x + rng.randint(-3, 3) * y
                        <= rng.randint(-5, 5))
            elif kind == 2:
                b = rng.choice(bools)
                x = rng.choice(reals)
                bound = rng.randint(-5, 5)
                term = implies(b, x >= bound)
            else:
                x = rng.choice(reals)
                term = Or(x <= rng.randint(-2, 2), x >= rng.randint(-2, 2))
            assertions.append(term)
            solver.add(term)
        result = solver.solve()
        if result is SolveResult.SAT:
            model = solver.model()
            for term in assertions:
                assert evaluate(term, model), term

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**30))
    def test_agreement_with_bound_enumeration(self, seed):
        """Tiny systems: compare against explicit case-splitting."""
        rng = random.Random(seed)
        x = RealVar(f"fx{seed}")
        lower = rng.randint(-5, 5)
        upper = rng.randint(-5, 5)
        solver = SmtSolver()
        solver.add(x >= lower)
        solver.add(x <= upper)
        expected = SolveResult.SAT if lower <= upper else SolveResult.UNSAT
        assert solver.solve() is expected


class TestIncrementality:
    def test_push_pop_nesting(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 0)
        solver.push()
        solver.add(x <= 10)
        solver.push()
        solver.add(x >= 20)
        assert solver.solve() is SolveResult.UNSAT
        solver.pop()
        assert solver.solve() is SolveResult.SAT
        solver.pop()
        solver.add(x >= 20)
        assert solver.solve() is SolveResult.SAT

    def test_pop_without_push(self):
        solver = SmtSolver()
        with pytest.raises(SolverError):
            solver.pop()

    def test_blocking_loop_enumerates_models(self):
        """The framework's iterate-and-block pattern over 2 booleans."""
        solver = SmtSolver()
        p, q = BoolVar("p"), BoolVar("q")
        solver.add(Or(p, q))
        seen = set()
        while solver.solve() is SolveResult.SAT:
            model = solver.model()
            bits = (model.bool_value(p), model.bool_value(q))
            assert bits not in seen
            seen.add(bits)
            block = []
            for var, value in zip((p, q), bits):
                block.append(Not(var) if value else var)
            solver.add(Or(*block))
        assert seen == {(True, False), (False, True), (True, True)}

    def test_cardinality_with_theory(self):
        solver = SmtSolver()
        bools = [BoolVar(f"m{i}") for i in range(4)]
        x = RealVar("cost")
        # Each selected item adds a lower bound on cost.
        for i, b in enumerate(bools):
            solver.add(implies(b, x >= 2 * (i + 1)))
        solver.add(at_most(bools, 2))
        solver.add(Or(*bools))
        solver.add(x <= 3)
        assert solver.solve() is SolveResult.SAT
        model = solver.model()
        chosen = [i for i, b in enumerate(bools) if model.bool_value(b)]
        assert chosen and all(2 * (i + 1) <= 3 for i in chosen)

    def test_model_lookup_defaults_for_unknown_variables(self):
        solver = SmtSolver()
        x = RealVar("known_x")
        solver.add(x >= 3)
        solver.solve()
        model = solver.model()
        assert model.bool_value(BoolVar("never_asserted")) is False
        assert model.real_value(RealVar("never_asserted")) == 0

    def test_model_strict_lookup_raises_for_unknown_variables(self):
        # Decoders pass strict=True: asking for a variable the encoding
        # never constrained is a bug, not a zero.
        solver = SmtSolver()
        x = RealVar("known_x")
        p = BoolVar("known_p")
        solver.add(x >= 3)
        solver.add(p)
        solver.solve()
        model = solver.model()
        assert model.real_value(x, strict=True) == 3
        assert model.bool_value(p, strict=True) is True
        with pytest.raises(KeyError, match="ghost_b"):
            model.bool_value(BoolVar("ghost_b"), strict=True)
        with pytest.raises(KeyError, match="ghost_r"):
            model.real_value(RealVar("ghost_r"), strict=True)

    def test_statistics_populated(self):
        solver = SmtSolver()
        x = RealVar("x")
        p = BoolVar("p")
        solver.add(implies(p, x >= 3))
        solver.add(p)
        solver.solve()
        stats = solver.stats
        assert stats.solve_calls == 1
        assert stats.theory_atoms >= 1
        assert stats.real_vars == 1
        assert stats.total_time > 0
