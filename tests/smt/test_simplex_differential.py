"""Randomized differential test: Simplex vs brute-force vertex search.

Small exact-rational LPs ``min c·x  s.t.  A·x <= b, -B <= x <= B`` are
solved two ways that share no code:

* the repo's :class:`~repro.smt.simplex.Simplex` (rows + asserted bounds,
  phase-1 ``check`` then phase-2 ``minimize``), and
* textbook vertex enumeration — every n-subset of the constraint rows is
  solved by Fraction Gaussian elimination; feasible vertices are scored.

The box bounds make every nonempty feasible region a bounded polyhedron,
which always attains its optimum at such a vertex, so feasibility and
the exact optimum must agree on every instance.
"""

import itertools
import random
from fractions import Fraction

from repro.smt.rational import DeltaRational
from repro.smt.simplex import Simplex

BOX = Fraction(8)           # -BOX <= x_i <= BOX for every variable


def solve_square(rows, rhs):
    """Solve a square Fraction system by Gaussian elimination.

    Returns the solution vector or None when the matrix is singular.
    """
    n = len(rows)
    A = [list(row) + [b] for row, b in zip(rows, rhs)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if A[r][col] != 0), None)
        if pivot is None:
            return None
        A[col], A[pivot] = A[pivot], A[col]
        inv = Fraction(1) / A[col][col]
        A[col] = [value * inv for value in A[col]]
        for r in range(n):
            if r != col and A[r][col] != 0:
                factor = A[r][col]
                A[r] = [value - factor * lead
                        for value, lead in zip(A[r], A[col])]
    return [A[r][n] for r in range(n)]


def brute_force(num_vars, constraints, objective):
    """(feasible?, optimal value) by enumerating constraint-set vertices.

    *constraints* are ``(coeffs, bound)`` rows meaning ``coeffs·x <=
    bound`` and must include the box rows, so a nonempty region is a
    bounded polyhedron and has a vertex at n active constraints.
    """
    best = None
    for subset in itertools.combinations(range(len(constraints)),
                                         num_vars):
        rows = [constraints[i][0] for i in subset]
        rhs = [constraints[i][1] for i in subset]
        point = solve_square(rows, rhs)
        if point is None:
            continue
        if any(sum(c * v for c, v in zip(coeffs, point)) > bound
               for coeffs, bound in constraints):
            continue
        value = sum(c * v for c, v in zip(objective, point))
        if best is None or value < best:
            best = value
    return best is not None, best


def simplex_solve(num_vars, ineqs, objective):
    """(feasible?, optimal value) via the repo's Simplex.

    *ineqs* are the non-box rows; the box goes in as direct variable
    bounds, exactly how the DPLL(T) bridge asserts bounds.
    """
    simplex = Simplex()
    xs = [simplex.new_variable() for _ in range(num_vars)]
    lit = 0
    for i, x in enumerate(xs):
        lit += 1
        if simplex.assert_lower(x, DeltaRational(-BOX), lit) is not None:
            return False, None
        lit += 1
        if simplex.assert_upper(x, DeltaRational(BOX), lit) is not None:
            return False, None
    for coeffs, bound in ineqs:
        nonzero = {xs[i]: c for i, c in enumerate(coeffs) if c != 0}
        lit += 1
        if not nonzero:
            if bound < 0:
                return False, None
            continue
        row = simplex.add_row(nonzero)
        if simplex.assert_upper(row, DeltaRational(bound),
                                lit) is not None:
            return False, None
    if simplex.check() is not None:
        return False, None
    obj_coeffs = {xs[i]: c for i, c in enumerate(objective) if c != 0}
    if not obj_coeffs:
        return True, Fraction(0)
    obj = simplex.add_row(obj_coeffs)
    if simplex.check() is not None:      # new row never changes feasibility
        return False, None
    optimum = simplex.minimize(obj)
    assert optimum.k == 0, "closed system must attain its optimum"
    return True, optimum.c


def random_instance(rng):
    num_vars = rng.randint(2, 3)
    num_rows = rng.randint(2, 5)
    ineqs = []
    for _ in range(num_rows):
        coeffs = [Fraction(rng.randint(-3, 3)) for _ in range(num_vars)]
        bound = Fraction(rng.randint(-6, 6), rng.randint(1, 2))
        ineqs.append((tuple(coeffs), bound))
    objective = [Fraction(rng.randint(-4, 4)) for _ in range(num_vars)]
    return num_vars, ineqs, objective


def box_rows(num_vars):
    rows = []
    for i in range(num_vars):
        unit = [Fraction(0)] * num_vars
        unit[i] = Fraction(1)
        rows.append((tuple(unit), BOX))
        rows.append((tuple(-c for c in unit), BOX))
    return rows


class TestSimplexDifferential:
    def test_random_lps_agree(self):
        rng = random.Random(31415926)
        feasible_seen = infeasible_seen = 0
        for _ in range(40):
            num_vars, ineqs, objective = random_instance(rng)
            constraints = list(ineqs) + box_rows(num_vars)
            expect_feasible, expect_opt = brute_force(
                num_vars, constraints, objective)
            got_feasible, got_opt = simplex_solve(
                num_vars, ineqs, objective)
            assert got_feasible == expect_feasible, (ineqs, objective)
            if expect_feasible:
                feasible_seen += 1
                assert got_opt == expect_opt, (ineqs, objective)
            else:
                infeasible_seen += 1
        # The generator must exercise both outcomes to mean anything.
        assert feasible_seen >= 10
        assert infeasible_seen >= 3

    def test_known_instance(self):
        # min -x - y  s.t. x + y <= 4, x - y <= 1 (+ box): optimum -4.
        ineqs = [((Fraction(1), Fraction(1)), Fraction(4)),
                 ((Fraction(1), Fraction(-1)), Fraction(1))]
        objective = [Fraction(-1), Fraction(-1)]
        feasible, optimum = simplex_solve(2, ineqs, objective)
        assert feasible and optimum == -4
        bf_feasible, bf_opt = brute_force(
            2, ineqs + box_rows(2), objective)
        assert bf_feasible and bf_opt == -4

    def test_infeasible_instance(self):
        # x + y <= -1 with x, y >= 0-ish is fine; force a clash instead:
        # x + y <= -20 conflicts with the -8 box bounds.
        ineqs = [((Fraction(1), Fraction(1)), Fraction(-20))]
        objective = [Fraction(1), Fraction(0)]
        feasible, _ = simplex_solve(2, ineqs, objective)
        assert not feasible
        bf_feasible, _ = brute_force(2, ineqs + box_rows(2), objective)
        assert not bf_feasible
