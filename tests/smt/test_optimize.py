"""Tests for exact optimization, fuzzed against scipy.optimize.linprog."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.exceptions import ConvergenceError
from repro.smt import (
    BoolVar,
    Or,
    RealVar,
    SmtSolver,
    SolveResult,
    implies,
    maximize,
    minimize,
)


class TestMinimizeBasics:
    def test_simple(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 3)
        result = minimize(solver, x)
        assert result.feasible and result.optimum == 3

    def test_infeasible(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 3)
        solver.add(x <= 2)
        result = minimize(solver, x)
        assert not result.feasible and result.optimum is None

    def test_objective_with_constant(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 2)
        result = minimize(solver, 3 * x + 7)
        assert result.optimum == 13

    def test_maximize(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x <= 5)
        solver.add(x >= 0)
        result = maximize(solver, 2 * x + 1)
        assert result.optimum == 11

    def test_model_attains_optimum(self):
        solver = SmtSolver()
        x, y = RealVar("x"), RealVar("y")
        solver.add(x + y >= 4)
        solver.add(x >= 0)
        solver.add(y >= 0)
        result = minimize(solver, 2 * x + y)
        assert result.optimum == 4  # x=0, y=4
        model = result.model
        assert 2 * model.real_value(x) + model.real_value(y) == 4

    def test_solver_state_preserved(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 1)
        solver.add(x <= 9)
        minimize(solver, x)
        # The scratch bound (x < optimum) must be gone: maximize still works.
        result = maximize(solver, x)
        assert result.optimum == 9


class TestBooleanStructure:
    def test_disjunctive_regions(self):
        # Cost is >= 10 in region p, >= 2 in region not-p: optimizer must
        # discover the cheaper branch.
        solver = SmtSolver()
        p = BoolVar("p")
        x = RealVar("x")
        solver.add(implies(p, x >= 10))
        solver.add(Or(p, x >= 2))
        result = minimize(solver, x)
        assert result.optimum == 2
        assert result.model.bool_value(p) is False

    def test_discrete_choice_of_generators(self):
        # A miniature unit-commitment: pick one of two supply options.
        solver = SmtSolver()
        use_a, use_b = BoolVar("use_a"), BoolVar("use_b")
        pa, pb = RealVar("pa"), RealVar("pb")
        solver.add(Or(use_a, use_b))
        solver.add(implies(use_a, pa >= 5))
        solver.add(implies(~use_a, pa.eq(0)))
        solver.add(implies(use_b, pb >= 5))
        solver.add(implies(~use_b, pb.eq(0)))
        solver.add(pa >= 0)
        solver.add(pb >= 0)
        # Cost: a costs 3/unit, b costs 2/unit.
        result = minimize(solver, 3 * pa + 2 * pb)
        assert result.optimum == 10  # use b alone at 5 units
        assert result.model.bool_value(use_b)


def _disjunctive_solver():
    """Two propositional regions: cost >= 10 under p, >= 2 under ~p.

    Minimization needs at least three solver iterations (first region,
    second region, final unsat proof), so a budget of one or two must
    trip the convergence guard.
    """
    solver = SmtSolver()
    p = BoolVar("p")
    x = RealVar("x")
    solver.add(implies(p, x >= 10))
    solver.add(Or(p, x >= 2))
    solver.add(x <= 100)
    return solver, x


class TestIterationBudget:
    def test_exhausted_budget_raises(self):
        solver, x = _disjunctive_solver()
        with pytest.raises(ConvergenceError, match="1 iterations"):
            minimize(solver, x, max_iterations=1)

    def test_zero_budget_raises_even_when_trivial(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 3)
        with pytest.raises(ConvergenceError):
            minimize(solver, x, max_iterations=0)

    def test_solver_state_survives_convergence_error(self):
        # The scratch scope must be popped on the error path too: the
        # same solver converges when given a sufficient budget.
        solver, x = _disjunctive_solver()
        with pytest.raises(ConvergenceError):
            minimize(solver, x, max_iterations=1)
        result = minimize(solver, x)
        assert result.optimum == 2

    def test_iteration_count_reported(self):
        solver, x = _disjunctive_solver()
        result = minimize(solver, x)
        assert result.feasible
        assert 2 <= result.iterations <= 10

    def test_maximize_propagates_budget(self):
        solver, x = _disjunctive_solver()
        with pytest.raises(ConvergenceError):
            maximize(solver, x, max_iterations=1)


class TestMaximize:
    def test_sign_of_optimum_with_constant(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= -4)
        solver.add(x <= 6)
        result = maximize(solver, -2 * x + 3)
        assert result.optimum == 11  # attained at x = -4

    def test_model_attains_maximum(self):
        solver = SmtSolver()
        x, y = RealVar("mx"), RealVar("my")
        solver.add(x + y <= 7)
        solver.add(x >= 0)
        solver.add(y >= 0)
        result = maximize(solver, x + 2 * y)
        assert result.optimum == 14  # x=0, y=7
        model = result.model
        assert model.real_value(x) + 2 * model.real_value(y) == 14

    def test_infeasible_maximize(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(x >= 3)
        solver.add(x <= 2)
        result = maximize(solver, x)
        assert not result.feasible
        assert result.optimum is None and result.model is None

    def test_maximize_over_disjunctive_regions(self):
        solver, x = _disjunctive_solver()
        result = maximize(solver, x)
        assert result.optimum == 100

    def test_exact_fractions(self):
        solver = SmtSolver()
        x = RealVar("x")
        solver.add(3 * x <= 1)
        solver.add(x >= 0)
        result = maximize(solver, x)
        assert result.optimum == Fraction(1, 3)  # exact, not 0.333...


class TestFuzzAgainstScipy:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**30))
    def test_random_lps(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        m = rng.randint(1, 4)
        A = [[rng.randint(-3, 3) for _ in range(n)] for _ in range(m)]
        b = [rng.randint(-4, 12) for _ in range(m)]
        c = [rng.randint(-4, 4) for _ in range(n)]

        reference = linprog(c, A_ub=A, b_ub=b, bounds=[(0, 8)] * n,
                            method="highs")

        solver = SmtSolver()
        xs = [RealVar(f"x{seed}_{i}") for i in range(n)]
        for x in xs:
            solver.add(x >= 0)
            solver.add(x <= 8)
        for row, bound in zip(A, b):
            expr = sum((coeff * x for coeff, x in zip(row, xs)),
                       start=0 * xs[0])
            solver.add(expr <= bound)
        objective = sum((coeff * x for coeff, x in zip(c, xs)),
                        start=0 * xs[0])
        result = minimize(solver, objective)

        assert result.feasible == reference.success
        if reference.success:
            assert abs(float(result.optimum) - reference.fun) < 1e-6
