"""Tests for the term language: normalization, folding, evaluation."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.smt.terms import (
    Atom,
    AtMost,
    And,
    BoolVar,
    FALSE,
    LinExpr,
    Not,
    Or,
    RealVar,
    TRUE,
    at_least,
    at_most,
    exactly,
    iff,
    implies,
    ite,
    linear_sum,
)


@pytest.fixture
def xy():
    return RealVar("x"), RealVar("y")


class TestLinExpr:
    def test_addition_merges_coefficients(self, xy):
        x, y = xy
        expr = (2 * x + y) + (3 * x - y)
        assert expr.coeffs == {x: Fraction(5)}

    def test_zero_coefficients_dropped(self, xy):
        x, _ = xy
        expr = x - x
        assert expr.is_constant and expr.const == 0

    def test_scalar_multiplication(self, xy):
        x, y = xy
        expr = 3 * (x + 2 * y + 1)
        assert expr.coeffs == {x: Fraction(3), y: Fraction(6)}
        assert expr.const == 3

    def test_nonlinear_product_rejected(self, xy):
        x, y = xy
        with pytest.raises(SolverError):
            (x + 1) * (y + 1)

    def test_division(self, xy):
        x, _ = xy
        expr = (2 * x + 4) / 2
        assert expr.coeffs == {x: Fraction(1)} and expr.const == 2

    def test_division_by_zero(self, xy):
        x, _ = xy
        with pytest.raises(ZeroDivisionError):
            x._lin() / 0

    def test_evaluate(self, xy):
        x, y = xy
        expr = 2 * x - 3 * y + 5
        assert expr.evaluate({x: Fraction(1), y: Fraction(2)}) == 1

    def test_linear_sum(self, xy):
        x, y = xy
        expr = linear_sum([x, 2 * y, 3])
        assert expr.coeffs == {x: Fraction(1), y: Fraction(2)}
        assert expr.const == 3


class TestAtomNormalization:
    def test_constant_comparison_folds(self):
        assert (LinExpr.constant(1) <= 2) is TRUE
        assert (LinExpr.constant(3) <= 2) is FALSE
        assert LinExpr.constant(2).eq(2) is TRUE

    def test_atoms_interned(self, xy):
        x, y = xy
        a1 = x + y <= 3
        a2 = x + y <= 3
        assert a1 is a2

    def test_scaled_atoms_identified(self, xy):
        x, y = xy
        a1 = 2 * x + 2 * y <= 6
        a2 = x + y <= 3
        assert a1 is a2

    def test_ge_rewritten_via_le(self, xy):
        x, _ = xy
        atom = x >= 3
        # x >= 3 is Not(x < 3) after canonicalization.
        assert isinstance(atom, Not)
        inner = atom.arg
        assert isinstance(inner, Atom) and inner.op == Atom.LT

    def test_negative_leading_coefficient_flips(self, xy):
        x, _ = xy
        a1 = -x <= -3         # same as x >= 3
        a2 = x >= 3
        assert repr(a1) == repr(a2)

    def test_constant_moved_to_bound(self, xy):
        x, _ = xy
        atom = x + 5 <= 8
        assert isinstance(atom, Atom)
        assert atom.bound == 3 and atom.expr.const == 0


class TestBooleanSimplification:
    def test_double_negation(self):
        p = BoolVar("p")
        assert Not(Not(p)) is p

    def test_and_flattening(self):
        p, q, r = (BoolVar(n) for n in "pqr")
        conj = And(And(p, q), r)
        assert len(conj.args) == 3

    def test_and_identity_and_absorption(self):
        p = BoolVar("p")
        assert And(p, TRUE) is p
        assert And(p, FALSE) is FALSE
        assert And() is TRUE

    def test_or_identity_and_absorption(self):
        p = BoolVar("p")
        assert Or(p, FALSE) is p
        assert Or(p, TRUE) is TRUE
        assert Or() is FALSE

    def test_operators(self):
        p, q = BoolVar("p"), BoolVar("q")
        assert isinstance(p & q, And)
        assert isinstance(p | q, Or)
        assert isinstance(~p, Not)

    def test_implies_shape(self):
        p, q = BoolVar("p"), BoolVar("q")
        term = implies(p, q)
        assert isinstance(term, Or)

    def test_ite_and_iff_build(self):
        p, q, r = (BoolVar(n) for n in "pqr")
        assert isinstance(iff(p, q), And)
        assert isinstance(ite(p, q, r), And)


class TestCardinality:
    def test_trivially_true(self):
        bools = [BoolVar(f"b{i}") for i in range(3)]
        assert at_most(bools, 3) is TRUE
        assert at_most(bools, 5) is TRUE
        assert at_least(bools, 0) is TRUE

    def test_impossible(self):
        bools = [BoolVar(f"b{i}") for i in range(3)]
        assert at_least(bools, 4) is FALSE

    def test_at_most_node(self):
        bools = [BoolVar(f"b{i}") for i in range(4)]
        node = at_most(bools, 2)
        assert isinstance(node, AtMost) and node.bound == 2

    def test_exactly_combines(self):
        bools = [BoolVar(f"b{i}") for i in range(4)]
        node = exactly(bools, 2)
        assert isinstance(node, And)

    @given(st.integers(min_value=0, max_value=6))
    def test_at_least_dual(self, k):
        bools = [BoolVar(f"c{i}") for i in range(5)]
        node = at_least(bools, k)
        if k == 0:
            assert node is TRUE
        elif k > 5:
            assert node is FALSE
        elif k <= 5:
            if isinstance(node, AtMost):
                assert node.bound == 5 - k
