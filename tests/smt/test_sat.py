"""Tests for the CDCL SAT core, including fuzzing against brute force."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SatSolver, luby


def brute_force_sat(num_vars, clauses):
    """Reference check: is the clause set satisfiable?"""
    for bits in itertools.product([False, True], repeat=num_vars):
        def lit_true(lit):
            value = bits[abs(lit) - 1]
            return value if lit > 0 else not value
        if all(any(lit_true(lit) for lit in clause) for clause in clauses):
            return True
    return False


def make_solver(num_vars, clauses):
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert make_solver(0, []).solve()

    def test_single_unit(self):
        solver = make_solver(1, [[1]])
        assert solver.solve()
        assert solver.model_value(1)

    def test_contradictory_units(self):
        solver = make_solver(1, [[1], [-1]])
        assert not solver.solve()

    def test_empty_clause_unsat(self):
        solver = make_solver(1, [[]])
        assert not solver.solve()

    def test_tautology_ignored(self):
        solver = make_solver(2, [[1, -1], [2]])
        assert solver.solve()
        assert solver.model_value(2)

    def test_simple_implication_chain(self):
        # 1 -> 2 -> 3 -> ... -> 8, with 1 forced true.
        clauses = [[1]] + [[-i, i + 1] for i in range(1, 8)]
        solver = make_solver(8, clauses)
        assert solver.solve()
        assert all(solver.model_value(v) for v in range(1, 9))

    def test_pigeonhole_3_into_2_unsat(self):
        # Pigeon p in hole h: var 2*(p-1)+h, p in 1..3, h in 1..2.
        def var(p, h):
            return 2 * (p - 1) + h
        clauses = [[var(p, 1), var(p, 2)] for p in (1, 2, 3)]
        for h in (1, 2):
            for p1, p2 in itertools.combinations((1, 2, 3), 2):
                clauses.append([-var(p1, h), -var(p2, h)])
        solver = make_solver(6, clauses)
        assert not solver.solve()

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        solver = make_solver(3, clauses)
        assert solver.solve()
        model = [None] + [solver.model_value(v) for v in range(1, 4)]
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


class TestAssumptions:
    def test_sat_under_assumption(self):
        solver = make_solver(2, [[-1, 2]])
        assert solver.solve([1])
        assert solver.model_value(1) and solver.model_value(2)

    def test_unsat_under_assumption_but_sat_without(self):
        solver = make_solver(2, [[-1, 2], [-1, -2]])
        assert not solver.solve([1])
        assert solver.solve()
        assert solver.solve([-1])

    def test_conflicting_assumptions(self):
        solver = make_solver(2, [])
        assert not solver.solve([1, -1])

    def test_incremental_reuse(self):
        solver = make_solver(3, [[1, 2, 3]])
        assert solver.solve([-1, -2])
        assert solver.model_value(3)
        solver.add_clause([-3])
        assert not solver.solve([-1, -2])
        assert solver.solve()


class TestFuzzAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_3sat(self, data):
        num_vars = data.draw(st.integers(min_value=1, max_value=9))
        num_clauses = data.draw(st.integers(min_value=1, max_value=38))
        rng = random.Random(data.draw(st.integers(0, 2**30)))
        clauses = []
        for _ in range(num_clauses):
            width = rng.randint(1, 3)
            clause = [rng.choice([-1, 1]) * rng.randint(1, num_vars)
                      for _ in range(width)]
            clauses.append(clause)
        expected = brute_force_sat(num_vars, clauses)
        solver = make_solver(num_vars, clauses)
        result = solver.solve()
        assert result == expected
        if result:
            model = [None] + [solver.model_value(v)
                              for v in range(1, num_vars + 1)]
            for clause in clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_assumptions(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=8))
        rng = random.Random(data.draw(st.integers(0, 2**30)))
        clauses = []
        for _ in range(rng.randint(2, 25)):
            clause = [rng.choice([-1, 1]) * rng.randint(1, num_vars)
                      for _ in range(rng.randint(1, 3))]
            clauses.append(clause)
        assumptions = [rng.choice([-1, 1]) * v
                       for v in rng.sample(range(1, num_vars + 1),
                                           rng.randint(0, num_vars))]
        expected = brute_force_sat(
            num_vars, clauses + [[lit] for lit in assumptions])
        solver = make_solver(num_vars, clauses)
        assert solver.solve(assumptions) == expected
        # Solver stays reusable after assumption-based calls.
        assert solver.solve() == brute_force_sat(num_vars, clauses)
