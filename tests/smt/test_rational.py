"""Tests for delta-rational arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smt.rational import DeltaRational, resolve_delta, to_fraction

rationals = st.fractions(max_denominator=50)


class TestToFraction:
    def test_int(self):
        assert to_fraction(3) == Fraction(3)

    def test_float_uses_decimal_repr(self):
        assert to_fraction(0.1) == Fraction(1, 10)

    def test_string(self):
        assert to_fraction("2/7") == Fraction(2, 7)

    def test_fraction_passthrough(self):
        f = Fraction(3, 4)
        assert to_fraction(f) is f

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            to_fraction(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            to_fraction(float("inf"))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_fraction(object())


class TestOrdering:
    def test_delta_is_positive(self):
        assert DeltaRational(0, 1) > DeltaRational(0)

    def test_delta_smaller_than_any_positive_rational(self):
        assert DeltaRational(0, 1) < DeltaRational(Fraction(1, 10**9))

    def test_strict_upper_below_bound(self):
        assert DeltaRational.strict_upper(5) < DeltaRational(5)

    def test_strict_lower_above_bound(self):
        assert DeltaRational.strict_lower(5) > DeltaRational(5)

    @given(rationals, rationals)
    def test_rational_ordering_embeds(self, a, b):
        assert (DeltaRational(a) < DeltaRational(b)) == (a < b)

    @given(rationals, rationals, rationals, rationals)
    def test_trichotomy(self, c1, k1, c2, k2):
        x = DeltaRational(c1, k1)
        y = DeltaRational(c2, k2)
        assert sum([x < y, x == y, x > y]) == 1


class TestArithmetic:
    @given(rationals, rationals, rationals, rationals)
    def test_add_components(self, c1, k1, c2, k2):
        result = DeltaRational(c1, k1) + DeltaRational(c2, k2)
        assert result.c == c1 + c2 and result.k == k1 + k2

    @given(rationals, rationals, rationals)
    def test_scalar_mul_distributes(self, c, k, s):
        result = DeltaRational(c, k) * s
        assert result.c == c * s and result.k == k * s

    @given(rationals, rationals)
    def test_neg_is_additive_inverse(self, c, k):
        x = DeltaRational(c, k)
        assert x + (-x) == DeltaRational(0)

    def test_mul_by_delta_rational_rejected(self):
        with pytest.raises(TypeError):
            DeltaRational(1) * DeltaRational(2)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            DeltaRational(1) / 0

    @given(rationals, rationals, st.fractions(max_denominator=20).filter(lambda f: f != 0))
    def test_div_inverts_mul(self, c, k, s):
        x = DeltaRational(c, k)
        assert (x * s) / s == x

    def test_sub_and_rsub(self):
        assert 5 - DeltaRational(2) == DeltaRational(3)
        assert DeltaRational(5) - 2 == DeltaRational(3)


class TestSubstitution:
    @given(rationals, rationals)
    def test_substitute(self, c, k):
        x = DeltaRational(c, k)
        assert x.substitute(Fraction(1, 100)) == c + k * Fraction(1, 100)

    def test_float_ignores_delta(self):
        assert float(DeltaRational(Fraction(1, 2), 7)) == 0.5


class TestResolveDelta:
    def test_unconstrained_returns_one(self):
        assert resolve_delta([], [], []) == Fraction(1)

    def test_strict_pair_separated(self):
        # value 0 + delta must stay strictly below upper bound 1.
        value = DeltaRational(0, 1)
        lower = [DeltaRational(0, 1)]
        upper = [DeltaRational(1)]
        delta = resolve_delta([value], lower, upper)
        assert 0 < delta < 1

    def test_tight_strict_window(self):
        # lower 0+d, upper 1/1000 (non-strict): delta must be < 1/1000.
        value = DeltaRational(0, 1)
        delta = resolve_delta([value],
                              [DeltaRational(0, 1)],
                              [DeltaRational(Fraction(1, 1000))])
        assert 0 < delta < Fraction(1, 1000)
        assert value.substitute(delta) <= Fraction(1, 1000)
