"""Exhaustive tests for :mod:`repro.smt.evaluator`.

The evaluator is the foundation of certified solving's ``check_model`` —
a bug here would let wrong SAT answers through — so every term
constructor gets direct truth-table coverage, plus a randomized
round-trip property: any formula the solver finds satisfiable must
evaluate to True under the returned model.
"""

import random
from fractions import Fraction

import pytest

from repro.exceptions import SolverError
from repro.smt import (
    And,
    AtMost,
    BoolVar,
    FALSE,
    Not,
    Or,
    RealVar,
    SmtSolver,
    SolveResult,
    TRUE,
    at_least,
    at_most,
    exactly,
    iff,
    implies,
    ite,
)
from repro.smt.evaluator import evaluate
from repro.smt.solver import Model
from repro.smt.terms import Atom, BoolTerm

P, Q, R = BoolVar("p"), BoolVar("q"), BoolVar("r")
X, Y = RealVar("x"), RealVar("y")


def model(bools=None, reals=None) -> Model:
    return Model(bools or {}, reals or {})


M = model({P: True, Q: False, R: True},
          {X: Fraction(3), Y: Fraction(-1, 2)})


class TestBoolConst:
    def test_true(self):
        assert evaluate(TRUE, M) is True

    def test_false(self):
        assert evaluate(FALSE, M) is False


class TestBoolVar:
    def test_present(self):
        assert evaluate(P, M) is True
        assert evaluate(Q, M) is False

    def test_absent_defaults_false(self):
        assert evaluate(BoolVar("never_assigned"), M) is False


class TestAtom:
    @pytest.mark.parametrize("term,expected", [
        (X <= 3, True), (X <= 2, False), (X <= 4, True),
        (X < 3, False), (X < 4, True),
        (X >= 3, True), (X > 3, False),
        (X.eq(3), True), (X.eq(2), False),
        (X + Y <= Fraction(5, 2), True),
        (X + 2 * Y <= 1, False),
        (2 * X - Y >= Fraction(13, 2), True),
        (X - Y < Fraction(7, 2), False),       # 3.5 < 3.5 is false
        ((X + Y).eq(Fraction(5, 2)), True),
    ])
    def test_linear_atoms(self, term, expected):
        assert evaluate(term, M) is expected

    def test_absent_real_defaults_zero(self):
        z = RealVar("never_assigned_real")
        assert evaluate(z <= 0, M) is True
        assert evaluate(z.eq(0), M) is True

    def test_exact_rationals_no_float_drift(self):
        # 1/3 + 1/6 == 1/2 exactly; floats would make this flaky.
        m = model(reals={X: Fraction(1, 3), Y: Fraction(1, 6)})
        assert evaluate((X + Y).eq(Fraction(1, 2)), m) is True
        assert evaluate(X + Y < Fraction(1, 2), m) is False


class TestNot:
    def test_single(self):
        assert evaluate(Not(P), M) is False
        assert evaluate(Not(Q), M) is True

    def test_nested_negations(self):
        term: BoolTerm = Q
        for depth in range(1, 7):
            term = Not(term)
            assert evaluate(term, M) is (depth % 2 == 1)

    def test_negated_atom(self):
        assert evaluate(Not(X <= 2), M) is True
        assert evaluate(Not(Not(X <= 2)), M) is False


class TestAndOr:
    def test_and(self):
        assert evaluate(And(P, R), M) is True
        assert evaluate(And(P, Q), M) is False

    def test_or(self):
        assert evaluate(Or(Q, P), M) is True
        assert evaluate(Or(Q, Not(P)), M) is False

    def test_mixed_bool_and_theory(self):
        assert evaluate(And(P, X <= 3, Or(Q, Y < 0)), M) is True

    def test_implies_iff_ite(self):
        assert evaluate(implies(Q, P), M) is True
        assert evaluate(implies(P, Q), M) is False
        assert evaluate(iff(P, R), M) is True
        assert evaluate(iff(P, Q), M) is False
        assert evaluate(ite(P, R, Q), M) is True
        assert evaluate(ite(Q, R, Not(P)), M) is False


class TestAtMost:
    @pytest.mark.parametrize("bound,expected", [
        (0, False), (1, False), (2, True), (3, True),
    ])
    def test_direct(self, bound, expected):
        # P and R hold, Q does not: 2 of 3.
        assert evaluate(AtMost((P, Q, R), bound), M) is expected

    def test_over_negations(self):
        # Not(Q) holds, the others' negations do not: 1 of 3.
        term = AtMost((Not(P), Not(Q), Not(R)), 1)
        assert evaluate(term, M) is True

    def test_at_least_and_exactly(self):
        assert evaluate(at_least([P, Q, R], 2), M) is True
        assert evaluate(at_least([P, Q, R], 3), M) is False
        assert evaluate(exactly([P, Q, R], 2), M) is True
        assert evaluate(exactly([P, Q, R], 1), M) is False

    def test_atoms_as_args(self):
        term = at_most([X <= 3, Y <= 0, X < 0], 2)
        assert evaluate(term, M) is True
        assert evaluate(at_most([X <= 3, Y <= 0], 1), M) is False


class TestErrors:
    def test_unknown_term_type(self):
        with pytest.raises(SolverError):
            evaluate(object(), M)      # type: ignore[arg-type]


class TestRoundTripProperty:
    """Random formula -> solver model -> evaluate(...) is True."""

    def _random_term(self, rng, bools, reals, depth) -> BoolTerm:
        if depth <= 0:
            roll = rng.random()
            if roll < 0.4:
                var = rng.choice(bools)
                return var if rng.random() < 0.5 else Not(var)
            expr = sum((rng.randint(-3, 3) * v for v in reals),
                       rng.randint(-2, 2) * reals[0])
            bound = Fraction(rng.randint(-8, 8), rng.randint(1, 3))
            return rng.choice([expr <= bound, expr < bound,
                               expr >= bound, expr.eq(bound)])
        roll = rng.random()
        if roll < 0.25:
            return Not(self._random_term(rng, bools, reals, depth - 1))
        if roll < 0.5:
            return And(*[self._random_term(rng, bools, reals, depth - 1)
                         for _ in range(rng.randint(2, 3))])
        if roll < 0.75:
            return Or(*[self._random_term(rng, bools, reals, depth - 1)
                        for _ in range(rng.randint(2, 3))])
        args = [self._random_term(rng, bools, reals, 0)
                for _ in range(rng.randint(2, 4))]
        return AtMost(tuple(args), rng.randint(0, len(args) - 1))

    def test_solver_models_evaluate_true(self):
        rng = random.Random(987654)
        sat_seen = 0
        for round_no in range(60):
            bools = [BoolVar(f"rb{round_no}_{i}") for i in range(3)]
            reals = [RealVar(f"rr{round_no}_{i}") for i in range(2)]
            terms = [self._random_term(rng, bools, reals,
                                       rng.randint(1, 3))
                     for _ in range(rng.randint(1, 4))]
            solver = SmtSolver()
            for term in terms:
                solver.add(term)
            if solver.solve() is not SolveResult.SAT:
                continue
            sat_seen += 1
            m = solver.model()
            for term in terms:
                assert evaluate(term, m) is True, repr(term)
            assert evaluate(And(*terms), m) is True
        assert sat_seen >= 20    # the property must actually be exercised
