"""Tests for Tseitin conversion and the cardinality encodings.

Strategy: convert random Boolean terms to CNF, then compare SAT-solver
verdicts and models against direct truth-table evaluation of the term.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.cnf import CnfConverter
from repro.smt.sat import SatSolver
from repro.smt.terms import (
    And,
    BoolVar,
    Not,
    Or,
    at_least,
    at_most,
    exactly,
    iff,
    implies,
)


def eval_term(term, assignment):
    from repro.smt.terms import AtMost, BoolConst
    if isinstance(term, BoolConst):
        return term.value
    if isinstance(term, BoolVar):
        return assignment[term]
    if isinstance(term, Not):
        return not eval_term(term.arg, assignment)
    if isinstance(term, And):
        return all(eval_term(a, assignment) for a in term.args)
    if isinstance(term, Or):
        return any(eval_term(a, assignment) for a in term.args)
    if isinstance(term, AtMost):
        return sum(eval_term(a, assignment) for a in term.args) <= term.bound
    raise AssertionError(f"unexpected node {term!r}")


def solve_term(term, variables):
    """Assert *term* through the converter; return (sat, model dict)."""
    solver = SatSolver()
    converter = CnfConverter(solver.add_clause, solver.new_var)
    for clause in converter.assert_term(term):
        solver.add_clause(clause)
    sat = solver.solve()
    if not sat:
        return False, None
    model = {
        var: solver.model_value(converter.literal_for_boolvar(var))
        for var in variables
    }
    return True, model


def brute_force_term(term, variables):
    for bits in itertools.product([False, True], repeat=len(variables)):
        if eval_term(term, dict(zip(variables, bits))):
            return True
    return False


def random_term(rng, variables, depth):
    if depth == 0 or rng.random() < 0.3:
        var = rng.choice(variables)
        return var if rng.random() < 0.5 else Not(var)
    kind = rng.randrange(5)
    if kind == 0:
        return And(*(random_term(rng, variables, depth - 1)
                     for _ in range(rng.randint(2, 3))))
    if kind == 1:
        return Or(*(random_term(rng, variables, depth - 1)
                    for _ in range(rng.randint(2, 3))))
    if kind == 2:
        return Not(random_term(rng, variables, depth - 1))
    if kind == 3:
        return implies(random_term(rng, variables, depth - 1),
                       random_term(rng, variables, depth - 1))
    return iff(random_term(rng, variables, depth - 1),
               random_term(rng, variables, depth - 1))


class TestTseitinEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**30))
    def test_random_formulas_match_truth_tables(self, seed):
        rng = random.Random(seed)
        variables = [BoolVar(f"v{i}") for i in range(rng.randint(2, 5))]
        term = random_term(rng, variables, rng.randint(1, 4))
        expected = brute_force_term(term, variables)
        sat, model = solve_term(term, variables)
        assert sat == expected
        if sat:
            assert eval_term(term, model)

    def test_shared_subterms_share_definitions(self):
        solver = SatSolver()
        converter = CnfConverter(solver.add_clause, solver.new_var)
        p, q = BoolVar("p"), BoolVar("q")
        shared = And(p, q)
        lit1 = converter.convert(shared)
        lit2 = converter.convert(And(q, p))  # flattening sorts literals
        assert lit1 == lit2


class TestCardinalityEncoding:
    def exhaustive_check(self, n, bound, node_builder):
        """Every 0/1 assignment of the n inputs must match the semantics."""
        variables = [BoolVar(f"x{i}") for i in range(n)]
        node = node_builder(variables, bound)
        for bits in itertools.product([False, True], repeat=n):
            solver = SatSolver()
            converter = CnfConverter(solver.add_clause, solver.new_var)
            for clause in converter.assert_term(node):
                solver.add_clause(clause)
            for var, bit in zip(variables, bits):
                lit = converter.literal_for_boolvar(var)
                solver.add_clause([lit if bit else -lit])
            expected = eval_term(node, dict(zip(variables, bits))) \
                if not isinstance(node, bool) else node
            assert solver.solve() == expected, (bits, bound)

    def test_at_most_exhaustive(self):
        for n in (1, 2, 3, 4):
            for bound in range(0, n):
                self.exhaustive_check(n, bound, at_most)

    def test_at_least_exhaustive(self):
        for n in (1, 2, 3, 4):
            for bound in range(1, n + 1):
                self.exhaustive_check(n, bound, at_least)

    def test_exactly_exhaustive(self):
        for n in (2, 3, 4):
            for bound in range(0, n + 1):
                self.exhaustive_check(n, bound, exactly)

    def test_negated_at_most(self):
        # not(at_most([a,b,c], 1)) means at least 2 of them are true.
        variables = [BoolVar(f"y{i}") for i in range(3)]
        node = Not(at_most(variables, 1))
        solver = SatSolver()
        converter = CnfConverter(solver.add_clause, solver.new_var)
        for clause in converter.assert_term(node):
            solver.add_clause(clause)
        assert solver.solve()
        count = sum(
            solver.model_value(converter.literal_for_boolvar(v))
            for v in variables)
        assert count >= 2

    def test_large_at_most_is_polynomial(self):
        # 60 inputs, bound 5: the sequential counter stays small and fast.
        variables = [BoolVar(f"z{i}") for i in range(60)]
        solver = SatSolver()
        converter = CnfConverter(solver.add_clause, solver.new_var)
        for clause in converter.assert_term(at_most(variables, 5)):
            solver.add_clause(clause)
        for var in variables[:5]:
            solver.add_clause([converter.literal_for_boolvar(var)])
        assert solver.solve()
        solver.add_clause([converter.literal_for_boolvar(variables[10])])
        assert not solver.solve()
