"""Tests for the general simplex theory solver, fuzzed against scipy."""

import random
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.exceptions import SolverError, UnboundedError
from repro.smt.rational import DeltaRational
from repro.smt.simplex import NO_LIT, Simplex


def dr(value):
    return DeltaRational(value)


class TestBoundAssertion:
    def test_simple_feasible(self):
        simplex = Simplex()
        x = simplex.new_variable()
        assert simplex.assert_lower(x, dr(1), 1) is None
        assert simplex.assert_upper(x, dr(5), 2) is None
        assert simplex.check() is None
        assert dr(1) <= simplex.value(x) <= dr(5)

    def test_immediate_bound_clash(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_lower(x, dr(3), 1)
        conflict = simplex.assert_upper(x, dr(2), 2)
        assert sorted(conflict) == [1, 2]

    def test_looser_bound_is_noop(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_upper(x, dr(5), 1)
        mark = simplex.mark()
        simplex.assert_upper(x, dr(10), 2)
        assert simplex.upper[x] == dr(5)
        simplex.pop_to(mark)
        assert simplex.upper[x] == dr(5)

    def test_pop_restores_bounds(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_upper(x, dr(5), 1)
        mark = simplex.mark()
        simplex.assert_upper(x, dr(2), 2)
        assert simplex.upper[x] == dr(2)
        simplex.pop_to(mark)
        assert simplex.upper[x] == dr(5)
        assert simplex.upper_lit[x] == 1


class TestRowsAndCheck:
    def test_row_consistency(self):
        simplex = Simplex()
        x = simplex.new_variable()
        y = simplex.new_variable()
        s = simplex.add_row({x: Fraction(1), y: Fraction(1)})
        simplex.assert_lower(s, dr(10), 1)
        simplex.assert_upper(x, dr(3), 2)
        simplex.assert_upper(y, dr(4), 3)
        conflict = simplex.check()
        assert conflict is not None
        assert set(conflict) == {1, 2, 3}

    def test_feasible_system_finds_assignment(self):
        simplex = Simplex()
        x = simplex.new_variable()
        y = simplex.new_variable()
        s = simplex.add_row({x: Fraction(1), y: Fraction(1)})
        d = simplex.add_row({x: Fraction(1), y: Fraction(-1)})
        simplex.assert_lower(s, dr(10), 1)
        simplex.assert_upper(d, dr(2), 2)
        assert simplex.check() is None
        vx, vy = simplex.value(x), simplex.value(y)
        assert vx + vy >= dr(10)
        assert vx - vy <= dr(2)

    def test_row_over_basic_variable_substitutes(self):
        simplex = Simplex()
        x = simplex.new_variable()
        s1 = simplex.add_row({x: Fraction(2)})
        s2 = simplex.add_row({s1: Fraction(1), x: Fraction(1)})  # = 3x
        simplex.assert_lower(s2, dr(9), 1)
        assert simplex.check() is None
        assert simplex.value(x) >= dr(3)

    def test_strict_bounds_via_delta(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_lower(x, DeltaRational.strict_lower(0), 1)
        simplex.assert_upper(x, DeltaRational.strict_upper(1), 2)
        assert simplex.check() is None
        value = simplex.value(x)
        assert value > dr(0) and value < dr(1)

    def test_strict_window_empty(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_lower(x, DeltaRational.strict_lower(0), 1)
        conflict = simplex.assert_upper(x, DeltaRational.strict_upper(0), 2)
        assert conflict is not None


class TestMinimize:
    def test_requires_check_first(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_lower(x, dr(0), 1)
        with pytest.raises(SolverError):
            simplex.minimize(x)

    def test_plain_variable(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_lower(x, dr(2), 1)
        simplex.check()
        assert simplex.minimize(x) == dr(2)

    def test_unbounded(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_upper(x, dr(2), 1)
        simplex.check()
        with pytest.raises(UnboundedError):
            simplex.minimize(x)

    def test_small_lp(self):
        # min x + 2y  s.t. x + y >= 4, x <= 3, y <= 3, x,y >= 0
        simplex = Simplex()
        x = simplex.new_variable()
        y = simplex.new_variable()
        s = simplex.add_row({x: Fraction(1), y: Fraction(1)})
        obj = simplex.add_row({x: Fraction(1), y: Fraction(2)})
        for var in (x, y):
            simplex.assert_lower(var, dr(0), NO_LIT)
            simplex.assert_upper(var, dr(3), NO_LIT)
        simplex.assert_lower(s, dr(4), NO_LIT)
        assert simplex.check() is None
        minimum = simplex.minimize(obj)
        assert minimum == dr(5)  # x=3, y=1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**30))
    def test_random_lps_match_scipy(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        m = rng.randint(1, 4)
        # Random A x <= b with 0 <= x <= 10 and objective c.
        A = [[rng.randint(-3, 3) for _ in range(n)] for _ in range(m)]
        b = [rng.randint(-5, 15) for _ in range(m)]
        c = [rng.randint(-5, 5) for _ in range(n)]

        res = linprog(c, A_ub=A, b_ub=b, bounds=[(0, 10)] * n,
                      method="highs")

        simplex = Simplex()
        xs = [simplex.new_variable() for _ in range(n)]
        for var in xs:
            simplex.assert_lower(var, dr(0), NO_LIT)
            simplex.assert_upper(var, dr(10), NO_LIT)
        for row, bound in zip(A, b):
            coeffs = {xs[j]: Fraction(row[j])
                      for j in range(n) if row[j] != 0}
            if not coeffs:
                if bound < 0:
                    # Infeasible row 0 <= b < 0; scipy reports infeasible.
                    assert not res.success
                    return
                continue
            s = simplex.add_row(coeffs)
            simplex.assert_upper(s, dr(bound), NO_LIT)
        obj_coeffs = {xs[j]: Fraction(c[j]) for j in range(n) if c[j] != 0}
        conflict = simplex.check()
        if not res.success:
            assert conflict is not None
            return
        assert conflict is None
        if not obj_coeffs:
            return
        obj = simplex.add_row(obj_coeffs)
        minimum = simplex.minimize(obj)
        assert abs(float(minimum.c) - res.fun) < 1e-6

    def test_minimize_preserves_feasibility(self):
        simplex = Simplex()
        x = simplex.new_variable()
        y = simplex.new_variable()
        s = simplex.add_row({x: Fraction(1), y: Fraction(1)})
        simplex.assert_lower(s, dr(4), NO_LIT)
        simplex.assert_lower(x, dr(0), NO_LIT)
        simplex.assert_lower(y, dr(0), NO_LIT)
        simplex.check()
        simplex.minimize(s)
        # All bounds still satisfied at the optimum.
        for var in (x, y, s):
            lo = simplex.lower[var]
            hi = simplex.upper[var]
            if lo is not None:
                assert simplex.value(var) >= lo
            if hi is not None:
                assert simplex.value(var) <= hi
