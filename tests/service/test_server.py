"""The HTTP acceptor: status mapping, shedding, health, drop faults."""

import json
import http.client
import time
import random
import threading

import pytest

from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)
from repro.service.client import ProtocolRejected
from repro.testing import (
    DROP_CONNECTION,
    HANG_WORKER,
    Fault,
    ServiceFaultPlan,
)

FAST_SPEC = {"case": "5bus-study1", "analyzer": "fast"}


@pytest.fixture
def service_factory(tmp_path):
    built = []

    def build(**overrides):
        overrides.setdefault("workers", 1)
        overrides.setdefault("cache_dir", None)
        overrides.setdefault("use_cache", False)
        overrides.setdefault("request_timeout", 20.0)
        server = ServiceServer(port=0,
                               config=ServiceConfig(**overrides))
        server.start()
        client = ServiceClient(server.url, retries=2,
                               backoff_seconds=0.05,
                               rng=random.Random(3))
        client.wait_ready(15.0)
        built.append(server)
        return server, client

    yield build
    for server in built:
        server.shutdown()


def raw_request(server, method, path, body=None):
    """One raw HTTP exchange (no client-side retry sugar)."""
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {} if payload is None else \
            {"Content-Type": "application/json",
             "Content-Length": str(len(payload))}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        decoded = json.loads(raw.decode()) if raw else {}
        return response.status, decoded, dict(response.headers)
    finally:
        conn.close()


def test_analyze_and_maximize_end_to_end(service_factory):
    server, client = service_factory(workers=2)
    result = client.analyze(FAST_SPEC)
    assert result["outcome"]["status"] == "ok"
    assert result["protocol_version"] == 1
    assert result["attempts"] == 1
    result = client.maximize(dict(FAST_SPEC, tolerance="1/4"))
    assert result["outcome"]["status"] == "ok"
    assert result["outcome"]["max_impact"]["max_increase_percent"]


def test_sweep_endpoint_runs_cells_in_order(service_factory):
    server, client = service_factory()
    result = client.sweep([dict(FAST_SPEC, label="a"),
                           dict(FAST_SPEC, label="b", target="2")])
    assert result["count"] == 2
    assert [c["label"] for c in result["cells"]] == ["a", "b"]
    assert all(c["outcome"]["status"] == "ok"
               for c in result["cells"])


def test_malformed_request_is_structured_400(service_factory):
    server, client = service_factory()
    with pytest.raises(ProtocolRejected) as err:
        client.analyze(dict(FAST_SPEC, mystery_knob=1))
    assert err.value.status == 400
    assert "protocol.unknown_field" in err.value.codes
    # raw: a non-JSON body must be a 400 too, not a stack trace
    status, body, _ = raw_request(server, "POST", "/v1/analyze")
    assert status == 400
    assert body["error"] == "protocol.malformed"


def test_version_mismatch_is_structured_400(service_factory):
    server, client = service_factory()
    status, body, _ = raw_request(
        server, "POST", "/v1/analyze",
        {"spec": FAST_SPEC, "protocol_version": 99})
    assert status == 400
    codes = [d["code"] for d in body["diagnostics"]["diagnostics"]]
    assert codes == ["protocol.version_mismatch"]
    status, body, _ = raw_request(
        server, "POST", "/v1/analyze",
        {"spec": FAST_SPEC, "cache_format": 1})
    assert status == 400
    codes = [d["code"] for d in body["diagnostics"]["diagnostics"]]
    assert codes == ["protocol.version_mismatch"]


def test_unknown_endpoint_404(service_factory):
    server, client = service_factory()
    status, body, _ = raw_request(server, "GET", "/nope")
    assert status == 404
    status, body, _ = raw_request(server, "POST", "/v1/nope", {})
    assert status == 404


def test_health_ready_stats_endpoints(service_factory):
    server, client = service_factory(workers=2)
    health = client.healthz()
    assert health["ok"] and not health["draining"]
    assert len(health["workers"]) == 2
    assert client.readyz()["ready"]
    client.analyze(FAST_SPEC)
    stats = client.stats()
    assert stats["counters"]["completed"] >= 1
    assert stats["queue_limit"] == 16
    assert stats["http"]["requests"] >= 1


def test_queue_full_sheds_with_429_retry_after(tmp_path,
                                               service_factory):
    state = tmp_path / "state"
    plan = ServiceFaultPlan.build(state, {
        "slow": Fault(kind=HANG_WORKER, times=1, sleep_seconds=2.0)})
    path = plan.to_file(tmp_path / "plan.json")
    server, client = service_factory(workers=1, queue_limit=1,
                                     fault_plan=path)

    # Occupy the single queue slot with a hanging request...
    background = threading.Thread(
        target=lambda: raw_request(
            server, "POST", "/v1/analyze",
            {"spec": dict(FAST_SPEC, label="slow")}),
        daemon=True)
    background.start()
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if server.supervisor.stats()["busy"] \
                or server.supervisor.stats()["queued"]:
            break
    # ...then observe the shed on the raw wire.
    status, body, headers = raw_request(
        server, "POST", "/v1/analyze",
        {"spec": dict(FAST_SPEC, label="shedme")})
    assert status == 429
    assert body["error"] == "queue_full"
    assert int(headers["Retry-After"]) >= 1
    background.join(timeout=30)


def test_draining_sheds_with_503(service_factory):
    server, client = service_factory()
    server.begin_drain()
    status, body, headers = raw_request(
        server, "POST", "/v1/analyze", {"spec": FAST_SPEC})
    assert status == 503
    assert body["error"] == "draining"
    assert "Retry-After" in headers
    status, body, _ = raw_request(server, "GET", "/readyz")
    assert status == 503            # not ready while draining
    assert body["draining"] is True


def test_dropped_connection_fault_is_retried_by_client(
        tmp_path, service_factory):
    state = tmp_path / "state"
    plan = ServiceFaultPlan.build(state, {
        "flaky": Fault(kind=DROP_CONNECTION, times=1)})
    path = plan.to_file(tmp_path / "plan.json")
    server, client = service_factory(workers=1, fault_plan=path)
    result = client.analyze(dict(FAST_SPEC, label="flaky"))
    assert result["outcome"]["status"] == "ok"
    assert client.attempts_made >= 2    # first response was severed
    assert server.http_stats()["dropped"] == 1


def test_graceful_drain_finishes_inflight_work(service_factory):
    server, client = service_factory(workers=1)
    results = []

    def run():
        results.append(client.analyze(dict(FAST_SPEC, label="inflight")))

    background = threading.Thread(target=run, daemon=True)
    background.start()
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if server.supervisor.submitted:
            break
    assert server.drain(timeout=20.0) is True
    background.join(timeout=10)
    assert results and results[0]["outcome"]["status"] == "ok"
