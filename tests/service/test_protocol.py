"""Strict wire-protocol parsing: structured 400s, never stack traces."""

import pytest

from repro.runner.spec import CACHE_FORMAT_VERSION
from repro.service.protocol import (
    BAD_FIELD,
    MALFORMED,
    PROTOCOL_VERSION,
    UNKNOWN_FIELD,
    VERSION_MISMATCH,
    ProtocolError,
    error_body,
    parse_request,
    parse_sweep_request,
)

GOOD_SPEC = {"case": "5bus-study1", "analyzer": "fast"}


def codes(exc: ProtocolError):
    return [d.code for d in exc.report.diagnostics]


def fields(exc: ProtocolError):
    return sorted(c for d in exc.report.diagnostics
                  for c in d.components)


class TestParseRequest:
    def test_minimal_request_parses(self):
        request = parse_request({"spec": GOOD_SPEC}, "analyze")
        assert request.kind == "analyze"
        assert request.spec.case == "5bus-study1"
        assert request.spec.search == "decision"
        assert request.use_cache is True
        assert request.deadline_seconds is None

    def test_maximize_endpoint_forces_search_mode(self):
        request = parse_request({"spec": GOOD_SPEC}, "maximize")
        assert request.spec.search == "maximize"

    def test_non_object_body_is_malformed(self):
        for body in (None, [], "x", 7):
            with pytest.raises(ProtocolError) as err:
                parse_request(body, "analyze")
            assert codes(err.value) == [MALFORMED]

    def test_missing_spec_is_malformed(self):
        with pytest.raises(ProtocolError) as err:
            parse_request({}, "analyze")
        assert MALFORMED in codes(err.value)

    def test_unknown_toplevel_field_rejected_by_name(self):
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": GOOD_SPEC, "bogus": 1}, "analyze")
        assert codes(err.value) == [UNKNOWN_FIELD]
        assert "field:bogus" in fields(err.value)

    def test_unknown_spec_field_rejected_by_name(self):
        spec = dict(GOOD_SPEC, not_a_field=True)
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": spec}, "analyze")
        assert UNKNOWN_FIELD in codes(err.value)
        assert "field:not_a_field" in fields(err.value)

    def test_search_conflicting_with_endpoint_rejected(self):
        spec = dict(GOOD_SPEC, search="maximize")
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": spec}, "analyze")
        assert BAD_FIELD in codes(err.value)

    def test_bad_case_type_never_raises_typeerror(self):
        for case in (None, 7, [], {}):
            with pytest.raises(ProtocolError) as err:
                parse_request({"spec": {"case": case}}, "analyze")
            assert BAD_FIELD in codes(err.value)

    def test_semantically_invalid_spec_is_bad_field(self):
        spec = dict(GOOD_SPEC, analyzer="quantum")
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": spec}, "analyze")
        assert BAD_FIELD in codes(err.value)

    def test_deadline_must_be_positive_number(self):
        for bad in (0, -1, "soon", True):
            with pytest.raises(ProtocolError) as err:
                parse_request({"spec": GOOD_SPEC,
                               "deadline_seconds": bad}, "analyze")
            assert BAD_FIELD in codes(err.value)
        request = parse_request(
            {"spec": GOOD_SPEC, "deadline_seconds": 2.5}, "analyze")
        assert request.deadline_seconds == 2.5

    def test_budget_keys_validated(self):
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": GOOD_SPEC,
                           "budget": {"max_conflicts": -5}}, "analyze")
        assert BAD_FIELD in codes(err.value)
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": GOOD_SPEC,
                           "budget": {"max_wizards": 5}}, "analyze")
        assert UNKNOWN_FIELD in codes(err.value)
        request = parse_request(
            {"spec": GOOD_SPEC, "budget": {"max_conflicts": 100}},
            "analyze")
        assert request.budget == {"max_conflicts": 100}

    def test_protocol_version_pin(self):
        ok = parse_request(
            {"spec": GOOD_SPEC, "protocol_version": PROTOCOL_VERSION},
            "analyze")
        assert ok.spec.case == "5bus-study1"
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": GOOD_SPEC,
                           "protocol_version": PROTOCOL_VERSION + 1},
                          "analyze")
        assert codes(err.value) == [VERSION_MISMATCH]

    def test_cache_format_pin(self):
        ok = parse_request(
            {"spec": GOOD_SPEC, "cache_format": CACHE_FORMAT_VERSION},
            "analyze")
        assert ok.spec.case == "5bus-study1"
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": GOOD_SPEC, "cache_format": 1},
                          "analyze")
        assert codes(err.value) == [VERSION_MISMATCH]

    def test_multiple_problems_reported_together(self):
        with pytest.raises(ProtocolError) as err:
            parse_request({"spec": GOOD_SPEC, "bogus": 1,
                           "deadline_seconds": -3}, "analyze")
        got = codes(err.value)
        assert UNKNOWN_FIELD in got and BAD_FIELD in got

    def test_job_payload_round_trips_options(self):
        request = parse_request(
            {"spec": GOOD_SPEC, "budget": {"max_conflicts": 7},
             "self_check": True, "use_cache": False}, "analyze")
        payload = request.job_payload()
        assert payload["budget"] == {"max_conflicts": 7}
        assert payload["self_check"] is True
        assert payload["use_cache"] is False
        assert payload["spec"]["case"] == "5bus-study1"


class TestParseSweepRequest:
    def test_parses_cells_with_shared_options(self):
        requests = parse_sweep_request(
            {"specs": [GOOD_SPEC, dict(GOOD_SPEC, target="2")],
             "deadline_seconds": 9})
        assert len(requests) == 2
        assert all(r.deadline_seconds == 9 for r in requests)
        assert all(r.kind == "analyze" for r in requests)

    def test_maximize_search_applies_to_every_cell(self):
        requests = parse_sweep_request(
            {"specs": [GOOD_SPEC], "search": "maximize"})
        assert requests[0].spec.search == "maximize"

    def test_empty_specs_rejected(self):
        for specs in ([], None, "x"):
            with pytest.raises(ProtocolError) as err:
                parse_sweep_request({"specs": specs})
            assert MALFORMED in codes(err.value)

    def test_bad_cell_named_by_index(self):
        with pytest.raises(ProtocolError) as err:
            parse_sweep_request(
                {"specs": [GOOD_SPEC, {"case": ""}]})
        assert BAD_FIELD in codes(err.value)


def test_error_body_shape():
    body = error_body("queue_full", "busy", retry_after=1.5)
    assert body["error"] == "queue_full"
    assert body["retry_after"] == 1.5
    assert body["protocol_version"] == PROTOCOL_VERSION
    assert "diagnostics" not in body
