"""Supervision: crash restart, bounded retry, backpressure, drain."""

import time

import pytest

from repro.service.protocol import parse_request
from repro.service.supervisor import (
    QueueFull,
    ServiceConfig,
    ServiceDraining,
    Supervisor,
)
from repro.testing import (
    CRASH_WORKER,
    HANG_WORKER,
    Fault,
    ServiceFaultPlan,
)

FAST_SPEC = {"case": "5bus-study1", "analyzer": "fast"}


def request_for(label, **options):
    spec = dict(FAST_SPEC, label=label)
    return parse_request(dict(options, spec=spec), "analyze")


def plan_file(tmp_path, faults):
    plan = ServiceFaultPlan.build(tmp_path / "state", faults)
    return plan.to_file(tmp_path / "faults.json")


@pytest.fixture
def supervisor_factory(tmp_path):
    built = []

    def build(**overrides):
        overrides.setdefault("workers", 1)
        overrides.setdefault("cache_dir", None)
        overrides.setdefault("use_cache", False)
        overrides.setdefault("request_timeout", 20.0)
        supervisor = Supervisor(ServiceConfig(**overrides)).start()
        built.append(supervisor)
        return supervisor

    yield build
    for supervisor in built:
        supervisor.stop()


def test_happy_path_completes_and_counts(supervisor_factory):
    supervisor = supervisor_factory(workers=2)
    jobs = [supervisor.submit(request_for(f"cell{i}"))
            for i in range(4)]
    for job in jobs:
        supervisor.wait(job)
        assert job.failure is None
        assert job.result["outcome"]["status"] == "ok"
        assert job.attempts == 1
    stats = supervisor.stats()
    assert stats["counters"]["completed"] == 4
    assert stats["counters"]["failed"] == 0


def test_warm_sessions_reused_across_jobs(supervisor_factory):
    supervisor = supervisor_factory(workers=1)
    for i in range(3):
        job = supervisor.wait(supervisor.submit(request_for(f"warm{i}")))
        assert job.failure is None
    # same encoding group every time: 1 miss then hits
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        totals = supervisor.stats()["totals"]
        if totals.get("session_hits", 0) >= 2:
            break
        time.sleep(0.05)
    assert totals["session_misses"] == 1
    assert totals["session_hits"] >= 2
    assert supervisor.stats()["warm_hit_ratio"] > 0.5


def test_crashed_worker_restarts_with_empty_session_pool(
        tmp_path, supervisor_factory):
    path = plan_file(tmp_path, {
        "boom": Fault(kind=CRASH_WORKER, times=1)})
    supervisor = supervisor_factory(workers=1, fault_plan=path)

    # Warm the pool first so the restart demonstrably clears it.
    warm = supervisor.wait(supervisor.submit(request_for("pre")))
    assert warm.failure is None

    job = supervisor.wait(supervisor.submit(request_for("boom")))
    assert job.failure is None, job.failure
    assert job.result["outcome"]["status"] == "ok"
    assert job.attempts == 2                    # retried exactly once
    health = supervisor.healthz()
    assert health["restarts"] == 1
    assert health["ok"]
    # The replacement worker rebuilt its warm state from scratch: the
    # successful retry is its first (and only) session miss.
    stats = job.result["stats"]
    assert stats["session_misses"] == 1
    assert stats["session_hits"] == 0


def test_in_flight_retried_exactly_once_then_failed_cleanly(
        tmp_path, supervisor_factory):
    path = plan_file(tmp_path, {
        "stubborn": Fault(kind=CRASH_WORKER, times=5)})
    supervisor = supervisor_factory(workers=1, fault_plan=path,
                                    retry_limit=1)
    job = supervisor.wait(supervisor.submit(request_for("stubborn")))
    assert job.failure is not None
    code, message = job.failure
    assert code == "worker_failed"
    assert job.attempts == 2                    # initial + one retry
    assert supervisor.stats()["counters"]["failed"] == 1
    # ...and the supervisor is not wedged: a clean job still runs.
    after = supervisor.wait(supervisor.submit(request_for("clean")))
    assert after.failure is None
    assert after.result["outcome"]["status"] == "ok"


def test_three_consecutive_crashes_do_not_wedge_the_service(
        tmp_path, supervisor_factory):
    path = plan_file(tmp_path, {
        f"boom{i}": Fault(kind=CRASH_WORKER, times=1)
        for i in range(3)})
    supervisor = supervisor_factory(workers=1, fault_plan=path)
    for i in range(3):
        job = supervisor.wait(supervisor.submit(request_for(f"boom{i}")))
        assert job.failure is None, job.failure
        assert job.attempts == 2
    assert supervisor.healthz()["restarts"] == 3
    final = supervisor.wait(supervisor.submit(request_for("steady")))
    assert final.failure is None
    assert final.attempts == 1


def test_hung_worker_killed_and_job_retried(tmp_path,
                                            supervisor_factory):
    path = plan_file(tmp_path, {
        "sleepy": Fault(kind=HANG_WORKER, times=1, sleep_seconds=60.0)})
    supervisor = supervisor_factory(workers=1, fault_plan=path,
                                    hang_grace=0.3)
    started = time.monotonic()
    job = supervisor.wait(supervisor.submit(
        request_for("sleepy", deadline_seconds=1.0)))
    elapsed = time.monotonic() - started
    assert job.failure is None, job.failure
    assert job.attempts == 2
    assert elapsed < 30.0                       # not the 60s nap
    assert supervisor.healthz()["restarts"] == 1


def test_queue_limit_sheds_with_retry_after(tmp_path,
                                            supervisor_factory):
    path = plan_file(tmp_path, {
        "slow": Fault(kind=HANG_WORKER, times=1, sleep_seconds=3.0)})
    supervisor = supervisor_factory(workers=1, queue_limit=2,
                                    fault_plan=path)
    blocker = supervisor.submit(request_for("slow"))
    filler = supervisor.submit(request_for("fill"))
    with pytest.raises(QueueFull) as err:
        supervisor.submit(request_for("shed"))
    assert err.value.retry_after > 0
    assert supervisor.stats()["counters"]["shed"] == 1
    for job in (blocker, filler):
        supervisor.wait(job)
        assert job.failure is None


def test_draining_rejects_new_but_finishes_accepted(supervisor_factory):
    supervisor = supervisor_factory(workers=1)
    job = supervisor.submit(request_for("last"))
    supervisor.begin_drain()
    with pytest.raises(ServiceDraining):
        supervisor.submit(request_for("late"))
    assert supervisor.drain(timeout=20.0) is True
    assert job.failure is None
    assert job.result["outcome"]["status"] == "ok"


def test_stop_fails_pending_jobs_cleanly(supervisor_factory):
    supervisor = supervisor_factory(workers=1)
    jobs = [supervisor.submit(request_for(f"j{i}")) for i in range(3)]
    supervisor.stop()
    for job in jobs:
        assert job.done.is_set()
        assert job.failure is not None or job.result is not None


def test_backoff_resets_after_healthy_interval(tmp_path,
                                               supervisor_factory):
    path = plan_file(tmp_path, {
        "boom": Fault(kind=CRASH_WORKER, times=1)})
    supervisor = supervisor_factory(workers=1, fault_plan=path,
                                    healthy_reset=0.3)
    job = supervisor.wait(supervisor.submit(request_for("boom")))
    assert job.failure is None
    handle = supervisor._workers[0]
    assert handle.restarts == 1
    assert handle.backoff_level == 1

    # Prove the replacement healthy, then outlive healthy_reset: the
    # backoff *level* is forgiven while the lifetime restarts counter
    # (an observability total, not a policy input) is untouched.
    steady = supervisor.wait(supervisor.submit(request_for("steady")))
    assert steady.failure is None
    deadline = time.monotonic() + 10.0
    while handle.backoff_level != 0 and time.monotonic() < deadline:
        time.sleep(0.05)
    assert handle.backoff_level == 0
    assert handle.restarts == 1
    assert supervisor.healthz()["restarts"] == 1


def test_backoff_level_untouched_before_healthy_interval(
        tmp_path, supervisor_factory):
    path = plan_file(tmp_path, {
        "boom": Fault(kind=CRASH_WORKER, times=1)})
    supervisor = supervisor_factory(workers=1, fault_plan=path,
                                    healthy_reset=3600.0)
    job = supervisor.wait(supervisor.submit(request_for("boom")))
    assert job.failure is None
    handle = supervisor._workers[0]
    steady = supervisor.wait(supervisor.submit(request_for("steady")))
    assert steady.failure is None
    time.sleep(0.3)     # several supervisor loop ticks
    assert handle.backoff_level == 1


def test_config_validation():
    with pytest.raises(ValueError):
        Supervisor(ServiceConfig(workers=0))
    with pytest.raises(ValueError):
        Supervisor(ServiceConfig(queue_limit=0))
