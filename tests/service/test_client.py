"""Client retry discipline: what retries, what doesn't, how it waits."""

import random

import pytest

from repro.service.client import (
    ProtocolRejected,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)


class ScriptedClient(ServiceClient):
    """A client whose transport replays a scripted response sequence."""

    def __init__(self, script, **kwargs):
        kwargs.setdefault("rng", random.Random(7))
        kwargs.setdefault("sleep", self._record_sleep)
        self.delays = []
        super().__init__("http://127.0.0.1:1", **kwargs)
        self._script = list(script)
        self.calls = 0

    def _record_sleep(self, seconds):
        self.delays.append(seconds)

    def _once(self, method, path, payload=None):
        self.calls += 1
        step = self._script.pop(0)
        if isinstance(step, Exception):
            raise step
        return dict(step)


def ok(payload=None):
    body = {"_status": 200}
    body.update(payload or {"outcome": {"status": "ok"}})
    return body


def test_success_needs_one_attempt():
    client = ScriptedClient([ok()])
    assert client.request("GET", "/stats")["outcome"]["status"] == "ok"
    assert client.calls == 1
    assert client.delays == []


def test_retries_connection_errors_then_succeeds():
    client = ScriptedClient(
        [ConnectionResetError("boom"), ConnectionRefusedError("no"),
         ok()], retries=5)
    assert client.request("POST", "/v1/analyze", {}) \
        == {"outcome": {"status": "ok"}}
    assert client.calls == 3
    assert len(client.delays) == 2


def test_retries_shed_and_drain_responses():
    client = ScriptedClient(
        [{"_status": 429, "error": "queue_full"},
         {"_status": 503, "error": "draining"},
         ok()], retries=5)
    client.request("POST", "/v1/analyze", {})
    assert client.calls == 3


def test_never_retries_protocol_rejections():
    client = ScriptedClient(
        [{"_status": 400, "error": "bad_request", "message": "nope",
          "diagnostics": {"subject": "x", "diagnostics": [
              {"code": "protocol.unknown_field", "severity": "fatal",
               "message": "m", "components": ["field:bogus"]}]}}],
        retries=5)
    with pytest.raises(ProtocolRejected) as err:
        client.request("POST", "/v1/analyze", {})
    assert client.calls == 1
    assert err.value.codes == ["protocol.unknown_field"]


def test_never_retries_not_found():
    client = ScriptedClient([{"_status": 404, "message": "no"}],
                            retries=5)
    with pytest.raises(ServiceError) as err:
        client.request("GET", "/nope")
    assert not isinstance(err.value, ServiceUnavailable)
    assert client.calls == 1


def test_exhausted_retries_raise_unavailable():
    client = ScriptedClient(
        [{"_status": 503, "error": "draining"}] * 3, retries=2)
    with pytest.raises(ServiceUnavailable) as err:
        client.request("POST", "/v1/analyze", {})
    assert client.calls == 3
    assert "3 attempt(s)" in str(err.value)


def test_backoff_grows_exponentially_with_jitter():
    client = ScriptedClient(
        [ConnectionError()] * 4 + [ok()], retries=4,
        backoff_seconds=0.1, backoff_cap=10.0)
    client.request("GET", "/stats")
    # delay_i = 0.1 * 2**i * jitter with jitter in [0.5, 1.5)
    for i, delay in enumerate(client.delays):
        base = 0.1 * (2 ** i)
        assert base * 0.5 <= delay < base * 1.5


def test_backoff_deterministic_under_seeded_rng():
    first = ScriptedClient([ConnectionError()] * 2 + [ok()], retries=3)
    first.request("GET", "/stats")
    second = ScriptedClient([ConnectionError()] * 2 + [ok()], retries=3)
    second.request("GET", "/stats")
    assert first.delays == second.delays


def test_backoff_capped():
    client = ScriptedClient(
        [ConnectionError()] * 6 + [ok()], retries=6,
        backoff_seconds=0.1, backoff_cap=0.4)
    client.request("GET", "/stats")
    assert all(delay < 0.4 * 1.5 for delay in client.delays)


def test_retry_after_hint_honoured_but_capped():
    client = ScriptedClient(
        [{"_status": 429, "error": "queue_full", "_retry_after": "2"},
         {"_status": 429, "error": "queue_full",
          "_retry_after": "9999"},
         ok()],
        retries=5, backoff_seconds=0.01, retry_after_cap=3.0)
    client.request("POST", "/v1/analyze", {})
    assert client.delays[0] >= 2.0          # hint dominates tiny backoff
    assert client.delays[1] <= 3.0 * 1.0 + 0.02   # capped, not 9999


def test_retry_after_http_date_form_honoured():
    # RFC 7231 allows an HTTP-date; ~4 seconds in the future should
    # dominate a tiny computed backoff (and still respect the cap).
    from datetime import datetime, timedelta, timezone
    from email.utils import format_datetime
    when = format_datetime(datetime.now(timezone.utc)
                           + timedelta(seconds=4))
    client = ScriptedClient(
        [{"_status": 503, "error": "draining", "_retry_after": when},
         ok()],
        retries=2, backoff_seconds=0.001, retry_after_cap=10.0)
    client.request("POST", "/v1/analyze", {})
    assert 2.0 <= client.delays[0] <= 4.5


def test_retry_after_garbage_falls_back_to_backoff():
    # Neither delta-seconds nor a parseable HTTP-date: the hint is
    # ignored and the computed backoff applies — never an exception.
    client = ScriptedClient(
        [{"_status": 429, "error": "queue_full",
          "_retry_after": "soonish, promise"},
         {"_status": 429, "error": "queue_full",
          "_retry_after": "Wed, 99 Nonsense 10101"},
         ok()],
        retries=5, backoff_seconds=0.1, backoff_cap=10.0)
    client.request("POST", "/v1/analyze", {})
    for i, delay in enumerate(client.delays):
        base = 0.1 * (2 ** i)
        assert base * 0.5 <= delay < base * 1.5


def test_retry_after_http_date_in_the_past_is_zero():
    client = ScriptedClient(
        [{"_status": 503, "error": "draining",
          "_retry_after": "Mon, 01 Jan 2001 00:00:00 GMT"},
         ok()],
        retries=2, backoff_seconds=0.1)
    client.request("POST", "/v1/analyze", {})
    # A past date hints 0 seconds; computed backoff still applies.
    assert 0.05 <= client.delays[0] < 0.15


def test_base_url_parsing():
    client = ServiceClient("http://10.1.2.3:8080")
    assert (client.host, client.port) == ("10.1.2.3", 8080)
    client = ServiceClient("127.0.0.1:9")
    assert (client.host, client.port) == ("127.0.0.1", 9)
    with pytest.raises(ValueError):
        ServiceClient("ftp://x")
