"""Tests for the fault-tolerant analysis service (repro.service)."""
