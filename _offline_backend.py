"""Minimal PEP 517/660 build backend so ``pip install -e .`` works offline.

The execution environment has no network access and no ``wheel`` package,
so the standard setuptools editable path (which shells out to
``bdist_wheel``) fails.  This backend builds the tiny wheels itself: an
editable install is just a ``.pth`` file pointing at ``src/`` plus
dist-info metadata, both of which we can emit with the standard library.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "0.1.0"
TAG = "py3-none-any"
HERE = os.path.abspath(os.path.dirname(__file__))

METADATA = f"""Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: Reproduction of 'Impact Analysis of Topology Poisoning Attacks on Economic Operation of the Smart Power Grid' (ICDCS 2014)
Requires-Python: >=3.9
"""

WHEEL_META = f"""Wheel-Version: 1.0
Generator: repro-offline-backend
Root-Is-Purelib: true
Tag: {TAG}
"""


def _record_line(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(
        hashlib.sha256(data).digest()).rstrip(b"=").decode()
    return f"{name},sha256={digest},{len(data)}"


def _write_wheel(wheel_directory: str, files: dict) -> str:
    dist_info = f"{NAME}-{VERSION}.dist-info"
    files = dict(files)
    files[f"{dist_info}/METADATA"] = METADATA.encode()
    files[f"{dist_info}/WHEEL"] = WHEEL_META.encode()
    record_name = f"{dist_info}/RECORD"
    record = "\n".join(
        _record_line(name, data) for name, data in files.items())
    record += f"\n{record_name},,\n"
    files[record_name] = record.encode()

    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    path = os.path.join(wheel_directory, wheel_name)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        for name, data in files.items():
            archive.writestr(name, data)
    return wheel_name


# -- PEP 660 (editable) -------------------------------------------------

def build_editable(wheel_directory, config_settings=None,
                   metadata_directory=None):
    src = os.path.join(HERE, "src")
    return _write_wheel(wheel_directory,
                        {f"{NAME}-editable.pth": (src + "\n").encode()})


def get_requires_for_build_editable(config_settings=None):
    return []


# -- PEP 517 (regular wheel / sdist) -------------------------------------

def build_wheel(wheel_directory, config_settings=None,
                metadata_directory=None):
    files = {}
    src = os.path.join(HERE, "src")
    for root, _dirs, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith(".py"):
                continue
            full = os.path.join(root, name)
            rel = os.path.relpath(full, src).replace(os.sep, "/")
            with open(full, "rb") as handle:
                files[rel] = handle.read()
    return _write_wheel(wheel_directory, files)


def get_requires_for_build_wheel(config_settings=None):
    return []


def build_sdist(sdist_directory, config_settings=None):
    raise NotImplementedError("sdist builds are not supported offline")
