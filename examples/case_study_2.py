#!/usr/bin/env python3
"""Case study 2 (paper Table III): topology poisoning + state infection.

Reproduces Section III-G's second worked example — the attack that
combines excluding line 6 with a UFDI attack on state 3, so the believed
load shift lands on buses 2 and 4 instead of 3 and 4 — and explores the
impact landscape around it:

* the maximum achievable cost increase (the paper's "cannot increase the
  cost more than 8%"),
* the pure-UFDI bound (the paper's "without topology attacks ... less
  than 3%"),
* the superiority of the combined attack over each ingredient alone.

Run:  python examples/case_study_2.py
"""

from fractions import Fraction

from repro.core import ImpactAnalyzer, ImpactQuery
from repro.estimation import MeasurementPlan
from repro.grid.cases import get_case


def main() -> None:
    case = get_case("5bus-study2")
    analyzer = ImpactAnalyzer(case)
    plan = MeasurementPlan.from_case(case)

    # The headline query: >= 6% with topology + state attacks.
    report = analyzer.analyze(ImpactQuery(with_state_infection=True,
                                          verify_with_smt_opf=True))
    print(report.render(plan))

    # How far can each attack class push the cost?
    print("\nimpact ceilings (largest satisfiable target):")
    pure_pct, _ = analyzer.max_achievable_increase(
        with_state_infection=False, percent_grid=range(1, 13))
    print(f"  topology attack alone        : {float(pure_pct):.0f}%")
    combined_pct, _ = analyzer.max_achievable_increase(
        with_state_infection=True, percent_grid=range(1, 13))
    print(f"  topology + state infection   : {float(combined_pct):.0f}%")

    ufdi_best = Fraction(0)
    for pct in range(1, 13):
        ufdi = analyzer.analyze(ImpactQuery(
            target_increase_percent=Fraction(pct),
            with_state_infection=True,
            allow_topology_attack=False))
        if not ufdi.satisfiable:
            break
        ufdi_best = Fraction(pct)
    print(f"  UFDI (state) attack alone    : {float(ufdi_best):.0f}%")

    print("\npaper's qualitative claims, checked:")
    print(f"  combined > topology-only     : "
          f"{combined_pct > pure_pct}")
    print(f"  UFDI alone misses the 6% goal: {ufdi_best < 6}")
    beyond = analyzer.analyze(ImpactQuery(
        target_increase_percent=combined_pct + 1,
        with_state_infection=True))
    print(f"  {float(combined_pct + 1):.0f}% is unsatisfiable"
          f"          : {not beyond.satisfiable}")


if __name__ == "__main__":
    main()
