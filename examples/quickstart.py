#!/usr/bin/env python3
"""Quickstart: analyze the paper's 5-bus system end to end.

Walks the public API in five steps:

1. load a test case (the paper's Table-II scenario),
2. solve the attack-free Optimal Power Flow,
3. ask the formal framework whether a stealthy topology-poisoning attack
   can raise the believed-optimal generation cost by at least 3%,
4. print the attack vector the SMT solver found,
5. double-check the impact with the paper's original SMT OPF check.

Run:  python examples/quickstart.py
"""

from repro.core import ImpactAnalyzer, ImpactQuery
from repro.estimation import MeasurementPlan
from repro.grid.cases import get_case
from repro.opf import solve_dc_opf


def main() -> None:
    # 1. The paper's 5-bus system with the case-study-1 attacker scenario.
    case = get_case("5bus-study1")
    grid = case.build_grid()
    print(f"loaded {case.name}: {grid}")

    # 2. Attack-free OPF: what the grid *should* cost to run.
    base = solve_dc_opf(grid, method="exact").require_feasible()
    print(f"attack-free optimal cost: ${float(base.cost):.2f}")
    print(f"congested (binding) lines: {base.binding_lines}")

    # 3. Can a stealthy attacker make the EMS believe running the grid
    #    must cost at least 3% more?
    analyzer = ImpactAnalyzer(case)
    report = analyzer.analyze(ImpactQuery(verify_with_smt_opf=True))

    # 4. The attack vector, in the paper's reporting style.
    print()
    print(report.render(MeasurementPlan.from_case(case)))

    # 5. The verdict is cross-checked two ways: an exact rational LP
    #    minimization of the believed system's cost, and the paper's
    #    original formulation — SMT unsatisfiability of "a dispatch
    #    cheaper than the threshold exists" (Eq. 37).
    if report.satisfiable:
        assert report.smt_opf_unsat_confirmed
        print("impact confirmed by both the exact LP oracle and the "
              "SMT OPF model")


if __name__ == "__main__":
    main()
