#!/usr/bin/env python3
"""Build and analyze a custom case from the paper's text input format.

Shows the full round trip a user of the original tool would follow: write
the input file (the paper's Tables II/III layout), parse it, run the
analysis, and write the results file.

Run:  python examples/custom_case.py
"""

import tempfile
from pathlib import Path

from repro.core import ImpactAnalyzer, ImpactQuery
from repro.estimation import MeasurementPlan
from repro.grid import parse_case, write_case
from repro.grid.cases import get_case

#: A 3-bus toy system in the paper's input format: two cheap-to-expensive
#: generators, one congested line, a spoofable tie line.
INPUT_TEXT = """
# Topology (Line) Information
# (line no, from bus, to bus, admittance, line capacity, knowledge?, in true topology?, in core?, secured?, can alter?)
1 1 2 10.0 0.40 1 1 1 0 0
2 2 3 8.0 0.25 1 1 0 0 1
3 1 3 5.0 0.30 1 1 1 1 1
# Measurement Information
# (measurement no, measurement taken?, secured?, can attacker alter?)
1 1 1 0
2 1 0 1
3 1 1 0
4 1 0 1
5 1 0 1
6 1 0 1
7 1 1 0
8 1 0 1
9 1 0 1
# Attacker's Resource Limitation (measurements, buses)
6 2
# Bus Types (bus no, is generator?, is load?)
1 1 0
2 0 1
3 1 1
# Generator Information (bus no, max generation, min generation, cost coefficient)
1 0.90 0.05 40 1500
3 0.60 0.05 40 2600
# Load Information (bus no, existing load, max load, min load)
2 0.45 0.70 0.15
3 0.25 0.50 0.05
# Cost Constraint, Minimum Cost Increase by Attack (in percentage)
0 2
"""


def main() -> None:
    case = parse_case(INPUT_TEXT, name="toy3")
    grid = case.build_grid()
    print(f"parsed custom case: {grid}")

    analyzer = ImpactAnalyzer(case)
    print(f"attack-free optimal cost: ${float(analyzer.base_cost):.2f}")

    report = analyzer.analyze(ImpactQuery(max_candidates=30))
    print(report.render(MeasurementPlan.from_case(case)))

    # Round-trip the case and the result to files, as the original tool
    # does with its input/output text files.
    out_dir = Path(tempfile.mkdtemp(prefix="repro-"))
    (out_dir / "input.txt").write_text(write_case(case))
    (out_dir / "output.txt").write_text(report.render())
    print(f"\ninput/output files written under {out_dir}")


if __name__ == "__main__":
    main()
