#!/usr/bin/env python3
"""Scalability sweep: impact analysis across the IEEE system sizes.

Mirrors the paper's Section IV methodology on the 5/14/30/57/118-bus
systems using the LODF/LCDF fast analyzer (the paper's own scalability
enhancement), printing per-size timing, verdicts and the best attack
found — the data behind Fig. 4 at large scale.

Run:  python examples/scalability_sweep.py
"""

import time

from repro.benchlib import format_series, randomize_attacker
from repro.core import FastImpactAnalyzer, FastQuery
from repro.grid.cases import SCALABILITY_SWEEP, get_case


def main() -> None:
    timings = {}
    for name in SCALABILITY_SWEEP:
        case = randomize_attacker(get_case(name), seed=2014)
        started = time.perf_counter()
        analyzer = FastImpactAnalyzer(case)
        report = analyzer.analyze(FastQuery(target_increase_percent=1))
        elapsed = time.perf_counter() - started
        buses = case.num_buses
        timings[buses] = elapsed

        print(f"{name} ({buses} buses, {case.num_lines} lines, "
              f"{len(case.generators)} generators)")
        print(f"  candidates examined : {report.candidates_examined}")
        print(f"  verdict             : "
              f"{'sat' if report.satisfiable else 'unsat'}")
        if report.satisfiable:
            attack = report.attack
            kind = "exclude" if attack.excluded else "include"
            target = (attack.excluded or attack.included)[0]
            print(f"  best attack         : {kind} line {target}, "
                  f"+{float(report.achieved_increase_percent):.2f}% cost")
            print(f"  measurements / buses: "
                  f"{len(attack.altered_measurements)} / "
                  f"{len(attack.compromised_buses)}")
        print(f"  analysis time       : {elapsed:.2f}s")
        print()

    print(format_series("fast impact analysis time", "buses", "seconds",
                        timings))


if __name__ == "__main__":
    main()
