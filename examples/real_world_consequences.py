#!/usr/bin/env python3
"""What actually happens to the grid after the attack succeeds.

The paper quantifies impact as the rise in the *believed* optimal cost —
what the fooled EMS will pay.  This example follows the story one step
further, onto the physical grid: the EMS re-dispatches to its believed
optimum, but the real network still contains line 6 and carries the real
loads.  We apply the fooled dispatch to the true system and measure

* the real line loadings (does the fooled dispatch overload anything?),
* the N-1 security margin before vs after the attack — the silent
  degradation a stealthy attacker buys beyond the monetary impact.

Run:  python examples/real_world_consequences.py
"""

from repro.core import ImpactAnalyzer, ImpactQuery
from repro.grid.cases import get_case
from repro.grid.dcpf import solve_dc_power_flow
from repro.opf import solve_dc_opf
from repro.opf.contingency import screen_contingencies, security_margin


def main() -> None:
    case = get_case("5bus-study1")
    grid = case.build_grid()

    # The honest world: OPF on the true system.
    honest = solve_dc_opf(grid, method="exact").require_feasible()
    honest_dispatch = {b: float(v) for b, v in honest.dispatch.items()}
    print(f"honest optimal cost      : ${float(honest.cost):.2f}")
    print(f"honest N-1 margin        : "
          f"{security_margin(grid, honest_dispatch):.1f}%")

    # The attack (case study 1) and the dispatch the fooled EMS issues.
    analyzer = ImpactAnalyzer(case)
    report = analyzer.analyze(ImpactQuery())
    assert report.satisfiable
    attack = report.attack
    believed_topology = attack.believed_topology(grid)
    fooled = solve_dc_opf(grid, loads=attack.believed_loads,
                          line_indices=believed_topology,
                          method="exact").require_feasible()
    fooled_dispatch = {b: float(v) for b, v in fooled.dispatch.items()}
    print(f"\nattack: exclude line(s) {attack.excluded}; EMS believes "
          f"optimal cost is ${float(fooled.cost):.2f} "
          f"(+{float(report.achieved_increase_percent):.2f}%)")

    # Apply the fooled dispatch to the REAL system (line 6 closed, real
    # loads) and inspect the physical flows.
    real = solve_dc_power_flow(grid, fooled_dispatch)
    print("\nphysical line loadings under the fooled dispatch:")
    overloaded = []
    for line in grid.lines:
        flow = real.flow(line.index)
        loading = 100.0 * abs(flow) / float(line.capacity)
        marker = "  <-- OVERLOAD" if loading > 100 + 1e-6 else ""
        print(f"  line {line.index} ({line.from_bus}-{line.to_bus}): "
              f"{loading:6.1f}% of capacity{marker}")
        if loading > 100 + 1e-6:
            overloaded.append(line.index)

    margin = security_margin(grid, fooled_dispatch)
    n1 = screen_contingencies(grid, fooled_dispatch)
    print(f"\nN-1 margin under fooled dispatch: {margin:.1f}% "
          f"({'secure' if n1.secure else 'INSECURE'})")
    if not n1.secure:
        worst = n1.worst()
        if worst is not None:
            print(f"  worst: losing line {worst.outaged_line} loads "
                  f"line {worst.overloaded_line} to "
                  f"{worst.loading_percent:.0f}%")
        for outage in n1.islanding_outages:
            print(f"  losing line {outage} islands part of the grid")

    print("\ntakeaway: beyond the monetary impact the paper quantifies, "
          "the fooled dispatch erodes the real grid's security margin — "
          "the operator is flying blind on both cost and reliability.")


if __name__ == "__main__":
    main()
