#!/usr/bin/env python3
"""Case study 1 (paper Table II): topology-only poisoning.

Reproduces Section III-G's first worked example and then *demonstrates*
the found attack against a simulated EMS pipeline: spoofed breaker
statuses and falsified meter readings flow through the topology
processor, the WLS state estimator and the chi-square bad-data detector —
and the attack sails through undetected while the believed loads shift
exactly as the formal model predicted.

Run:  python examples/case_study_1.py
"""

import numpy as np

from repro.attacks import (
    apply_to_readings,
    apply_to_telemetry,
    craft_topology_attack,
)
from repro.core import ImpactAnalyzer, ImpactQuery
from repro.estimation import (
    BadDataDetector,
    MeasurementPlan,
    TelemetrySimulator,
    WlsEstimator,
)
from repro.grid.cases import get_case
from repro.grid.dcpf import solve_dc_power_flow
from repro.topology import StatusTelemetry, TopologyProcessor


def main() -> None:
    case = get_case("5bus-study1")
    grid = case.build_grid()
    plan = MeasurementPlan.from_case(case, grid)

    # --- the formal analysis (the paper's contribution) -----------------
    analyzer = ImpactAnalyzer(case)
    report = analyzer.analyze(ImpactQuery())
    print(report.render(plan))
    attack_vector = report.attack

    # --- demonstrate the attack against a simulated EMS ------------------
    # The operating point the formal model chose for the attacker.
    dispatch = {b: float(v)
                for b, v in attack_vector.operating_dispatch.items()}
    pf = solve_dc_power_flow(grid, dispatch)
    print(f"\nattacker-chosen operating point: line-6 flow = "
          f"{pf.flows[6]:.3f} p.u., cost = "
          f"${float(attack_vector.operating_cost):.2f}")

    attack = craft_topology_attack(grid, pf.flows, pf.angles,
                                   excluded=attack_vector.excluded)

    # Poison the breaker statuses and the meter readings.
    statuses = apply_to_telemetry(attack, StatusTelemetry.from_grid(grid))
    sigma = 0.003
    readings = TelemetrySimulator(plan, sigma=sigma, seed=1).readings(
        pf.flows, pf.consumption)
    poisoned = apply_to_readings(attack, plan, readings)

    # The EMS pipeline: topology processor -> estimator -> BDD -> loads.
    view = TopologyProcessor(grid).map_topology(statuses)
    print(f"topology processor believes line(s) {view.excluded_lines} "
          f"are open")
    estimator = WlsEstimator(plan, topology=view.mapped_lines)
    detector = BadDataDetector(estimator, sigma=sigma)
    bdd = detector.test(poisoned)
    print(f"bad-data detection: J(x) = {bdd.objective:.2f} vs threshold "
          f"{bdd.threshold:.2f} -> "
          f"{'DETECTED' if bdd.detected else 'undetected'}")

    estimate = estimator.estimate(poisoned)
    loads = estimate.estimated_loads(grid, dispatch)
    print("loads the EMS now believes: "
          + ", ".join(f"bus {b}: {v:.3f}" for b, v in sorted(loads.items())
                      if b in grid.loads))
    print("loads the formal model predicted: "
          + ", ".join(f"bus {b}: {float(v):.3f}" for b, v in
                      sorted(attack_vector.believed_loads.items())))
    assert not bdd.detected


if __name__ == "__main__":
    main()
