#!/usr/bin/env python3
"""Defense planning: which protections actually kill the attack?

The paper positions its framework as a tool for operators to "preemptively
analyze and explore potential threats".  This example does exactly that on
the 5-bus system: it asks, for each candidate countermeasure, whether the
case-study attack survives —

* securing the status channel of the vulnerable line,
* integrity-protecting individual measurements,
* shrinking the attacker's measurement / substation budgets,

and reports the cheapest countermeasure set that makes the 3% impact goal
unsatisfiable.

Run:  python examples/defense_planning.py
"""

from dataclasses import replace

from repro.core import ImpactAnalyzer, ImpactQuery
from repro.grid.caseio import CaseDefinition, MeasurementSpec
from repro.grid.cases import get_case


def with_secured_line(case: CaseDefinition, line: int) -> CaseDefinition:
    specs = [replace(s, status_secured=True) if s.index == line else s
             for s in case.line_specs]
    return _rebuild(case, line_specs=specs,
                    name=f"{case.name}+secure-line-{line}")


def with_secured_measurement(case: CaseDefinition,
                             index: int) -> CaseDefinition:
    specs = [MeasurementSpec(m.index, m.taken, True, m.alterable)
             if m.index == index else m for m in case.measurement_specs]
    return _rebuild(case, measurement_specs=specs,
                    name=f"{case.name}+secure-m{index}")


def with_budgets(case: CaseDefinition, measurements: int,
                 buses: int) -> CaseDefinition:
    return _rebuild(case, resource_measurements=measurements,
                    resource_buses=buses,
                    name=f"{case.name}+budget-{measurements}-{buses}")


def _rebuild(case: CaseDefinition, **overrides) -> CaseDefinition:
    fields = dict(
        name=case.name, line_specs=case.line_specs,
        measurement_specs=case.measurement_specs,
        bus_types=case.bus_types, generators=case.generators,
        loads=case.loads,
        resource_measurements=case.resource_measurements,
        resource_buses=case.resource_buses, base_cost=case.base_cost,
        min_increase_percent=case.min_increase_percent)
    fields.update(overrides)
    return CaseDefinition(**fields)


def survives(case: CaseDefinition) -> bool:
    analyzer = ImpactAnalyzer(case)
    return analyzer.analyze(ImpactQuery(max_candidates=20)).satisfiable


def main() -> None:
    base_case = get_case("5bus-study1")
    print(f"undefended: attack "
          f"{'succeeds' if survives(base_case) else 'fails'}")

    print("\ncountermeasure study (3% impact target):")
    candidates = [
        ("secure line 6 status channel", with_secured_line(base_case, 6)),
        ("secure measurement m6 (line-6 forward flow)",
         with_secured_measurement(base_case, 6)),
        ("secure measurement m17 (bus-3 consumption)",
         with_secured_measurement(base_case, 17)),
        ("secure measurement m7 (line-7 forward flow)",
         with_secured_measurement(base_case, 7)),
        ("budget: 3 measurements max",
         with_budgets(base_case, 3, base_case.resource_buses)),
        ("budget: 1 substation max",
         with_budgets(base_case, base_case.resource_measurements, 1)),
    ]
    effective = []
    for label, defended in candidates:
        blocked = not survives(defended)
        print(f"  {'BLOCKS attack' if blocked else 'ineffective  '} : "
              f"{label}")
        if blocked:
            effective.append(label)

    print(f"\n{len(effective)} single countermeasures suffice; any one of:")
    for label in effective:
        print(f"  - {label}")


if __name__ == "__main__":
    main()
