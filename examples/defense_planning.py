#!/usr/bin/env python3
"""Defense planning: which protections actually kill the attack?

The paper positions its framework as a tool for operators to "preemptively
analyze and explore potential threats".  This example does exactly that on
the 5-bus system through :mod:`repro.defense`: it asks, for each candidate
countermeasure, whether the case-study attack survives —

* securing the status channel of the vulnerable line,
* integrity-protecting individual measurements,
* shrinking the attacker's measurement / substation budgets,

and then lets :class:`~repro.defense.DefensePlanner` greedy-minimize the
full candidate set down to a 1-minimal set that makes the 3% impact goal
unsatisfiable.  All case rebuilds go through ``dataclasses.replace`` (via
the transforms in :mod:`repro.defense.planner`), so every field — the
reference bus included — survives the rewrite.

Run:  python examples/defense_planning.py
"""

from repro.defense import (
    DefensePlanner,
    SecureLineStatus,
    SecureMeasurement,
    TightenBudgets,
)
from repro.grid.cases import get_case

# Re-exported here so the example keeps working as a snippet source; the
# real implementations (dataclasses.replace-based) live in repro.defense.
from repro.defense import (          # noqa: F401
    with_budgets,
    with_secured_line,
    with_secured_measurement,
)


def main() -> None:
    base_case = get_case("5bus-study1")
    planner = DefensePlanner(base_case, target=3, max_candidates=20)

    survives = planner.attack_survives(base_case)
    print(f"undefended: attack {'succeeds' if survives else 'fails'}")

    print("\ncountermeasure study (3% impact target):")
    candidates = [
        ("secure line 6 status channel", SecureLineStatus(6)),
        ("secure measurement m6 (line-6 forward flow)",
         SecureMeasurement(6)),
        ("secure measurement m17 (bus-3 consumption)",
         SecureMeasurement(17)),
        ("secure measurement m7 (line-7 forward flow)",
         SecureMeasurement(7)),
        ("budget: 3 measurements max",
         TightenBudgets(3, base_case.resource_buses)),
        ("budget: 1 substation max",
         TightenBudgets(base_case.resource_measurements, 1)),
    ]
    effective = []
    for label, measure in candidates:
        blocked = planner.attack_survives(measure.apply(base_case)) is False
        print(f"  {'BLOCKS attack' if blocked else 'ineffective  '} : "
              f"{label}")
        if blocked:
            effective.append(label)

    print(f"\n{len(effective)} single countermeasures suffice; any one of:")
    for label in effective:
        print(f"  - {label}")

    plan = planner.plan([measure for _, measure in candidates])
    print(f"\ngreedy-minimal set ({plan.status}): "
          f"{[c.label for c in plan.selected]}")
    print(f"  {len(plan.probes)} probes, {plan.sessions_built} sessions "
          f"built, {plan.sessions_reused} reused warm")


if __name__ == "__main__":
    main()
